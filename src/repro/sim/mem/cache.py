"""Set-associative cache model.

Tag-only (the simulator keeps data in the functional layer), write-back
write-allocate, with pluggable per-set replacement.  Every access is
counted in the attached :class:`~repro.sim.statistics.StatGroup`, so the
harness's stat-reset/stat-dump protocol sees exactly the counters the
thesis reports: accesses, hits, misses, and writebacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.sim.mem.replacement import ReplacementPolicy, make_policy
from repro.sim.statistics import Stat, StatGroup


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class _CounterView(Stat):
    """A gem5-protocol stat backed by a plain attribute on its owner.

    The access path increments ``owner.<attr>`` as a bare integer (no
    bound-method call per access); this view keeps the reset/dump
    protocol working by remembering the attribute's value at the last
    reset and reporting the delta.  Used by the cache and TLB models.
    """

    def __init__(self, name: str, owner: object, attr: str, desc: str = ""):
        super().__init__(name, desc)
        self._owner = owner
        self._attr = attr
        self._base = 0

    def inc(self, amount: int = 1) -> None:
        setattr(self._owner, self._attr, getattr(self._owner, self._attr) + amount)

    def reset(self) -> None:
        self._base = getattr(self._owner, self._attr)

    def value(self) -> int:
        return getattr(self._owner, self._attr) - self._base

    def __repr__(self) -> str:
        return "_CounterView(%s=%s)" % (self.name, self.value())


class Cache:
    """One level of tag-only set-associative cache."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_size: int = 64,
        policy: str = "lru",
        stats_parent: Optional[StatGroup] = None,
        policy_kwargs: Optional[Dict] = None,
    ):
        if not _is_pow2(line_size):
            raise ValueError("line size must be a power of two, got %d" % line_size)
        if size_bytes % (assoc * line_size) != 0:
            raise ValueError(
                "cache %s: size %d not divisible by assoc*line (%d*%d)"
                % (name, size_bytes, assoc, line_size)
            )
        num_sets = size_bytes // (assoc * line_size)
        if not _is_pow2(num_sets):
            raise ValueError("cache %s: set count %d must be a power of two" % (name, num_sets))

        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = num_sets
        self._set_mask = num_sets - 1
        self._line_shift = line_size.bit_length() - 1
        self.policy_name = policy
        self._policy_kwargs: Dict = dict(policy_kwargs or {})

        self._sets: List[Set[int]] = [set() for _ in range(num_sets)]
        self._dirty: List[Set[int]] = [set() for _ in range(num_sets)]
        self._policies: List[ReplacementPolicy] = [
            self._make_policy(index) for index in range(num_sets)
        ]

        # Hot-path counters are plain ints; the registered stats are
        # views over them so reset/dump still work (see _CounterView).
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

        #: Optional :class:`repro.obs.CacheProfiler`; when attached, the
        #: demand stream feeds its shadow miss classifier.
        self.profiler = None

        stats = (stats_parent or StatGroup("orphan")).group(name)
        self.stats = stats
        self.stat_accesses = stats.add(_CounterView(
            "accesses", self, "accesses", "total demand accesses"))
        self.stat_hits = stats.add(_CounterView(
            "hits", self, "hits", "demand hits"))
        self.stat_misses = stats.add(_CounterView(
            "misses", self, "misses", "demand misses"))
        self.stat_writebacks = stats.add(_CounterView(
            "writebacks", self, "writebacks", "dirty lines evicted"))
        stats.formula(
            "missRate",
            lambda: (self.stat_misses.value() / self.stat_accesses.value())
            if self.stat_accesses.value()
            else 0.0,
            "misses / accesses",
        )

    def _make_policy(self, index: int) -> ReplacementPolicy:
        """The single construction point for per-set replacement policies.

        ``__init__``, :meth:`flush` and :meth:`load_state` all build
        policies here, so a restore can never diverge from the original
        configuration (seed or custom kwargs).  A caller-supplied seed in
        ``policy_kwargs`` overrides the per-set default.
        """
        kwargs = dict(self._policy_kwargs)
        kwargs.setdefault("seed", index)
        return make_policy(self.policy_name, **kwargs)

    # -- core access path ---------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def access_line(self, line: int, write: bool = False) -> bool:
        """Access one cache line; returns True on hit.

        On a miss the line is allocated (write-allocate) and a victim
        evicted if the set is full; a dirty victim counts a writeback.
        """
        index = line & self._set_mask
        resident = self._sets[index]
        self.accesses += 1
        profiler = self.profiler
        if line in resident:
            self.hits += 1
            if profiler is not None:
                profiler.on_hit(line)
            self._policies[index].touch(line)
            if write:
                self._dirty[index].add(line)
            return True
        self.misses += 1
        if profiler is not None:
            profiler.on_miss(line)
        policy = self._policies[index]
        if len(resident) >= self.assoc:
            victim = policy.victim()
            policy.evict(victim)
            resident.discard(victim)
            dirty = self._dirty[index]
            if victim in dirty:
                dirty.discard(victim)
                self.writebacks += 1
        resident.add(line)
        policy.insert(line)
        if write:
            self._dirty[index].add(line)
        return False

    def access(self, addr: int, write: bool = False) -> bool:
        """Byte-address convenience wrapper around :meth:`access_line`."""
        return self.access_line(self.line_of(addr), write)

    def fill_line(self, line: int) -> None:
        """Install a line without counting a demand access (prefetch fill)."""
        index = line & self._set_mask
        resident = self._sets[index]
        if line in resident:
            return
        policy = self._policies[index]
        if len(resident) >= self.assoc:
            victim = policy.victim()
            policy.evict(victim)
            resident.discard(victim)
            if victim in self._dirty[index]:
                self._dirty[index].discard(victim)
                self.writebacks += 1
        resident.add(line)
        policy.insert(line)

    def contains_line(self, line: int) -> bool:
        return line in self._sets[line & self._set_mask]

    # -- maintenance ---------------------------------------------------------

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty writebacks."""
        writebacks = 0
        for index in range(self.num_sets):
            writebacks += len(self._dirty[index])
            self._sets[index].clear()
            self._dirty[index].clear()
            self._policies[index] = self._make_policy(index)
        self.writebacks += writebacks
        return writebacks

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> Dict:
        """Microarchitectural state for checkpointing (tags + dirty bits)."""
        return {
            "geometry": (self.size_bytes, self.assoc, self.line_size),
            "sets": [policy.state() for policy in self._policies],
            "dirty": [sorted(d) for d in self._dirty],
        }

    def load_state(self, state: Dict) -> None:
        geometry = state.get("geometry")
        if geometry is not None and tuple(geometry) != (
            self.size_bytes, self.assoc, self.line_size
        ):
            raise ValueError(
                "checkpoint geometry %s does not match cache %s "
                "(%dB %d-way, %dB lines): checkpoints only restore onto "
                "the configuration they were taken from"
                % (tuple(geometry), self.name, self.size_bytes, self.assoc,
                   self.line_size)
            )
        for index, (tags, dirty) in enumerate(zip(state["sets"], state["dirty"])):
            policy = self._make_policy(index)
            self._sets[index] = set(tags)
            self._dirty[index] = set(dirty)
            for tag in tags:  # re-establish recency order
                policy.insert(tag)
            self._policies[index] = policy

    def __repr__(self) -> str:
        return "Cache(%s: %dB %d-way, %d sets, %s)" % (
            self.name, self.size_bytes, self.assoc, self.num_sets, self.policy_name,
        )
