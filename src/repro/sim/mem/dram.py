"""Main-memory timing model.

A bank/row-buffer model of the single-channel DDR3-1600 configuration from
Table 4.1: row-buffer hits pay CAS only, conflicts pay precharge +
activate + CAS, and a simple controller-queue term adds pressure under
bursts.  Latencies are expressed in *core cycles at 1 GHz* so they compose
directly with the CPU models.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.statistics import StatGroup


class DramModel:
    """DDR3-1600-like single-channel memory timing."""

    def __init__(
        self,
        banks: int = 8,
        row_bytes: int = 8192,
        cas_cycles: int = 44,
        activate_cycles: int = 44,
        precharge_cycles: int = 44,
        controller_cycles: int = 20,
        queue_window: int = 64,
        queue_penalty: int = 8,
        stats_parent: Optional[StatGroup] = None,
    ):
        if banks <= 0 or row_bytes <= 0:
            raise ValueError("banks and row_bytes must be positive")
        self.banks = banks
        self.row_bytes = row_bytes
        self.cas_cycles = cas_cycles
        self.activate_cycles = activate_cycles
        self.precharge_cycles = precharge_cycles
        self.controller_cycles = controller_cycles
        self.queue_window = queue_window
        self.queue_penalty = queue_penalty

        self._open_rows: Dict[int, int] = {}
        self._last_access_cycle = -(10**9)
        self._recent_accesses = 0

        stats = (stats_parent or StatGroup("orphan")).group("dram")
        self.stat_reads = stats.scalar("accesses", "memory accesses")
        self.stat_row_hits = stats.scalar("rowHits", "row buffer hits")
        self.stat_row_conflicts = stats.scalar("rowConflicts", "row buffer conflicts")

    def access(self, addr: int, now_cycle: int = 0) -> int:
        """Latency in core cycles for one line fill from DRAM."""
        self.stat_reads.inc()
        row = addr // self.row_bytes
        bank = row % self.banks
        latency = self.controller_cycles + self.cas_cycles

        open_row = self._open_rows.get(bank)
        if open_row == row:
            self.stat_row_hits.inc()
        else:
            self.stat_row_conflicts.inc()
            latency += self.activate_cycles
            if open_row is not None:
                latency += self.precharge_cycles
            self._open_rows[bank] = row

        # Crude queueing: accesses clustered within the window contend.
        if now_cycle - self._last_access_cycle <= self.queue_window:
            self._recent_accesses += 1
            latency += min(self._recent_accesses, 8) * self.queue_penalty
        else:
            self._recent_accesses = 0
        self._last_access_cycle = now_cycle
        return latency

    def state_dict(self) -> Dict:
        # The controller queue (_last_access_cycle/_recent_accesses) is
        # timing state: a restored run must observe the same clustering
        # window a continuing run would, or restore-then-run diverges
        # from checkpoint-then-run.
        return {
            "open_rows": dict(self._open_rows),
            "last_access_cycle": self._last_access_cycle,
            "recent_accesses": self._recent_accesses,
        }

    def load_state(self, state: Dict) -> None:
        self._open_rows = dict(state["open_rows"])
        self._last_access_cycle = state.get("last_access_cycle", -(10**9))
        self._recent_accesses = state.get("recent_accesses", 0)

    def __repr__(self) -> str:
        return "DramModel(%d banks, %dB rows)" % (self.banks, self.row_bytes)
