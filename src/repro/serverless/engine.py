"""Container engine: the Docker analog.

Runs containers from images, with the lifecycle (created → running →
stopped) and the platform prerequisites the thesis fought through: the
engine refuses to start unless the kernel it runs on has the namespace,
cgroup and overlay features Docker's check-config script verifies
(§3.2.2, §3.4.2.2) — the exact reason the thesis had to build a custom
kernel for gem5.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.obs.tracer import TRACK_ENGINE
from repro.serverless.container import ContainerImage, ImageRegistry

#: Fixed logical-tick costs per engine operation.  Container state
#: transitions happen outside the simulated cores, so traced runs charge
#: these deterministic constants instead of wall clock — two runs of the
#: same configuration must produce identical trace timestamps.
ENGINE_OP_COSTS = {"create": 8, "start": 4, "stop": 2, "remove": 1}

#: Kernel config options Docker's check-config.sh requires (abridged to
#: the ones that actually broke the thesis's gem5 kernels).
REQUIRED_KERNEL_FEATURES = (
    "CONFIG_NAMESPACES",
    "CONFIG_CGROUPS",
    "CONFIG_VETH",
    "CONFIG_BRIDGE",
    "CONFIG_NETFILTER_XT_MATCH_ADDRTYPE",
    "CONFIG_OVERLAY_FS",
)


class EngineError(RuntimeError):
    """Container engine operation failed."""


class Container:
    """One container instance."""

    _ids = itertools.count(1)

    def __init__(self, image: ContainerImage, name: Optional[str] = None,
                 cpu_pin: Optional[int] = None):
        self.container_id = "c%06d" % next(self._ids)
        self.image = image
        self.name = name or "%s-%s" % (image.name, self.container_id)
        self.cpu_pin = cpu_pin
        self.state = "created"
        self.started_count = 0

    @property
    def running(self) -> bool:
        return self.state == "running"

    def __repr__(self) -> str:
        return "Container(%s, %s, %s)" % (self.name, self.image.arch, self.state)


class ContainerEngine:
    """Docker-like engine bound to a host kernel's feature set."""

    def __init__(self, arch: str, kernel_features: Optional[List[str]] = None,
                 registry: Optional[ImageRegistry] = None,
                 installed_from_source: bool = False):
        self.arch = arch
        self.kernel_features = set(
            kernel_features if kernel_features is not None else REQUIRED_KERNEL_FEATURES
        )
        self.registry = registry or ImageRegistry()
        #: True on RISC-V, where no packaged Docker existed (§3.2.2).
        self.installed_from_source = installed_from_source
        self._local_images: Dict[str, ContainerImage] = {}
        self._containers: Dict[str, Container] = {}
        self.version = "25.0.0"  # Table 4.1
        #: Optional :class:`repro.obs.Tracer`; lifecycle operations then
        #: record spans on the engine track (container *names* only —
        #: container ids come from a process-global counter and would
        #: break trace determinism).
        self.tracer = None
        #: Optional :class:`repro.faults.FaultInjector`; lifecycle
        #: operations then consult the ``engine.*`` hook sites and fail
        #: with :class:`EngineError` when a fault fires.  Same
        #: guard-on-``None`` discipline as the tracer: disabled means no
        #: work at all.
        self.faults = None

    def _maybe_fault(self, op: str, container_name: str) -> None:
        faults = self.faults
        if faults is None:
            return
        if faults.should_fire("engine.%s" % op):
            raise EngineError(
                "injected engine fault: docker %s %s" % (op, container_name)
            )

    def _trace_op(self, op: str, container_name: str) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        cost = ENGINE_OP_COSTS[op]
        start = tracer.now
        tracer.advance(cost)
        tracer.complete("docker.%s" % op, "engine", start, cost,
                        TRACK_ENGINE, args={"container": container_name})

    # -- daemon preflight -------------------------------------------------------

    def check_kernel(self) -> List[str]:
        """Missing kernel features; empty means the daemon can start."""
        return sorted(set(REQUIRED_KERNEL_FEATURES) - self.kernel_features)

    def ensure_operational(self) -> None:
        missing = self.check_kernel()
        if missing:
            raise EngineError(
                "cannot start containers: kernel lacks %s (the thesis's "
                "emergency-mode boots in gem5 trace back to exactly this)"
                % ", ".join(missing)
            )

    # -- image management ----------------------------------------------------------

    def pull(self, name: str) -> ContainerImage:
        """Pull an image for this engine's architecture."""
        image = self.registry.pull(name, self.arch)
        self._local_images[name] = image
        return image

    def load_image(self, image: ContainerImage) -> None:
        """docker load: install an image built locally."""
        if image.arch != self.arch:
            raise EngineError(
                "exec format error: image %s is %s but engine is %s"
                % (image.name, image.arch, self.arch)
            )
        self._local_images[image.name] = image

    def images(self) -> List[ContainerImage]:
        return list(self._local_images.values())

    # -- container lifecycle ----------------------------------------------------------

    def create(self, image_name: str, name: Optional[str] = None,
               cpu_pin: Optional[int] = None) -> Container:
        self.ensure_operational()
        image = self._local_images.get(image_name)
        if image is None:
            raise EngineError("no such image %r; docker pull it first" % image_name)
        self._maybe_fault("create", name or image_name)
        container = Container(image, name=name, cpu_pin=cpu_pin)
        self._containers[container.name] = container
        self._trace_op("create", container.name)
        return container

    def start(self, name: str) -> Container:
        container = self._container(name)
        if container.running:
            raise EngineError("container %r already running" % name)
        self._maybe_fault("start", name)
        container.state = "running"
        container.started_count += 1
        self._trace_op("start", container.name)
        return container

    def stop(self, name: str) -> Container:
        container = self._container(name)
        if not container.running:
            raise EngineError("container %r is not running" % name)
        self._maybe_fault("stop", name)
        container.state = "stopped"
        self._trace_op("stop", container.name)
        return container

    def remove(self, name: str) -> None:
        container = self._container(name)
        if container.running:
            raise EngineError("cannot remove running container %r" % name)
        self._maybe_fault("remove", name)
        del self._containers[name]
        self._trace_op("remove", name)

    def crash(self) -> int:
        """Power loss: every container dies without a stop/remove cycle.

        A cluster node failure kills the machine, not the daemon — no
        lifecycle costs are charged, no ``engine.*`` fault sites draw,
        nothing is traced.  Pulled images survive (they are on disk);
        returns how many containers were lost.
        """
        lost = len(self._containers)
        self._containers.clear()
        return lost

    def ps(self, all_states: bool = False) -> List[Container]:
        return [
            container for container in self._containers.values()
            if all_states or container.running
        ]

    def _container(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise EngineError("no such container %r" % name) from None

    def __repr__(self) -> str:
        return "ContainerEngine(%s, %d images, %d containers)" % (
            self.arch, len(self._local_images), len(self._containers),
        )


def install_docker(arch: str, tracer=None, faults=None) -> ContainerEngine:
    """Provision an engine the way the thesis had to per platform.

    On x86 the package manager provides Docker.  On RISC-V (as of the
    thesis's June 2024 snapshot) it does not: the engine, containerd,
    rootlesskit et al. must be built from source — a ~3 hour affair inside
    the QEMU VM (§3.2.2).  We record that provenance on the engine.
    """
    engine = ContainerEngine(arch, installed_from_source=(arch == "riscv"))
    engine.tracer = tracer
    engine.faults = faults
    return engine
