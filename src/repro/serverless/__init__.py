"""Serverless-computing substrate: containers, engine, FaaS lifecycle, RPC.

This is the containerization/virtualization layer whose performance role
the thesis emphasises prior RISC-V serverless work ignored (§1.1).  It
provides:

* :mod:`repro.serverless.container` — images, layers, and a Docker-Hub-like
  registry with per-architecture availability (no Alpine Python for
  riscv64, §3.5.1),
* :mod:`repro.serverless.engine` — the container engine (pull / create /
  start / stop), including the build-from-source install path Docker
  required on RISC-V (§3.2.2),
* :mod:`repro.serverless.faas` — function instances with the
  dead / waiting / running states and cold / warm / lukewarm semantics of
  §2.1,
* :mod:`repro.serverless.rpc` — the gRPC-like request/response layer,
* :mod:`repro.serverless.loadgen` — the client that drives the
  10-request experiment protocol from core 0, plus seeded trace-driven
  open-loop arrival generation (:func:`arrival_ticks`),
* :mod:`repro.serverless.scaler` / :mod:`repro.serverless.router` — the
  serving layer: per-function instance pools behind a bounded queue with
  admission control, scaled by a Knative-style concurrency autoscaler
  (``python -m repro serve``),
* :mod:`repro.serverless.platform` — the deployment-target seam: one
  :class:`Platform` interface over today's single host
  (:class:`SingleHostPlatform`) and an N-node simulated cluster
  (:class:`ClusterPlatform`) with per-node engines, a placement
  scheduler, node-failure chaos and cross-node hop costs
  (``python -m repro serve --nodes``).
"""

from repro.serverless.container import ContainerImage, ImageLayer, ImageRegistry
from repro.serverless.engine import Container, ContainerEngine, EngineError
from repro.serverless.faas import (
    FaasPlatform,
    FunctionInstance,
    FunctionState,
    InvocationRecord,
    KeepAlivePolicy,
)
from repro.serverless.loadgen import LoadGenerator, RequestLog, arrival_ticks
from repro.serverless.metrics import FunctionMetrics, MetricsCollector
from repro.serverless.platform import (
    ClusterConfig,
    ClusterPlatform,
    Node,
    Platform,
    SingleHostPlatform,
    make_platform,
)
from repro.serverless.router import FunctionPool, Router, ServeResult
from repro.serverless.rpc import RpcChannel, RpcError, RpcRequest, RpcResponse
from repro.serverless.scaler import (
    ConcurrencyAutoscaler,
    ScalingConfig,
    ScalingEvent,
)

__all__ = [
    "ClusterConfig",
    "ClusterPlatform",
    "ConcurrencyAutoscaler",
    "FunctionPool",
    "Node",
    "Platform",
    "Router",
    "SingleHostPlatform",
    "make_platform",
    "ScalingConfig",
    "ScalingEvent",
    "ServeResult",
    "arrival_ticks",
    "Container",
    "ContainerEngine",
    "ContainerImage",
    "EngineError",
    "FaasPlatform",
    "FunctionInstance",
    "FunctionState",
    "ImageLayer",
    "ImageRegistry",
    "InvocationRecord",
    "KeepAlivePolicy",
    "FunctionMetrics",
    "LoadGenerator",
    "MetricsCollector",
    "RequestLog",
    "RpcChannel",
    "RpcError",
    "RpcRequest",
    "RpcResponse",
]
