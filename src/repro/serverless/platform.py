"""Pluggable serving platforms: one host, or an N-node simulated cluster.

The measurement pipeline benchmarks RISC-V serverless stacks on single
hosts — the paper's protocol — but the related work (Vitamin-V, SeBS)
argues the *cloud-service* level is where RISC-V must ultimately be
evaluated: multiple machines behind a scheduler, node failures, traffic
crossing machine boundaries.  This module supplies that seam without
forking the serving engine:

* :class:`Platform` — the deployment-target interface ``python -m repro
  serve`` programs against (deploy / serve / pool / registry);
* :class:`SingleHostPlatform` — today's path: one
  :class:`~repro.serverless.router.Router` on one implicit host,
  bit-identical to driving the router directly;
* :class:`ClusterPlatform` — N :class:`Node`\\ s, each with its own
  container engine, fronted by a cluster-level scheduler that places
  instances under a :class:`ClusterConfig` placement policy (bin-pack
  vs spread), injects whole-node failures through the
  ``cluster.node_down`` fault site, and charges cross-node hops using
  the :mod:`~repro.serverless.rpc` wire model.

Determinism contract: everything a cluster adds is a pure function of
``(ClusterConfig, seed, arrival trace)``.  Two serves with the same seed
produce byte-identical event logs at any node count, and a one-node
cluster reduces every hook to the single-host behaviour — placement has
one choice, every request's ingress hosts every instance (hop cost 0),
and node chaos is gated on a second live node — so
``ClusterPlatform(nodes=1)`` is bit-identical to
:class:`SingleHostPlatform` (asserted by the platform test suite).
"""

from __future__ import annotations

import heapq
import random
import zlib
from typing import Any, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec, NodeDownError
from repro.serverless.container import ImageRegistry
from repro.serverless.engine import ContainerEngine, install_docker
from repro.serverless.faas import FunctionState
from repro.serverless.router import Router, ServeResult
from repro.serverless.rpc import RpcChannel
from repro.serverless.scaler import ScalingEvent

#: Cluster scheduler policies: ``binpack`` fills the busiest node first
#: (consolidation — fewer machines touched, bigger blast radius);
#: ``spread`` fills the emptiest (failure isolation — the Kubernetes
#: default topology-spread instinct).
PLACEMENT_POLICIES = ("binpack", "spread")

_CLUSTER_FIELDS = ("nodes", "placement", "node_capacity", "hop_ticks",
                   "node_fail_rate", "node_recover_ticks")


class ClusterConfig:
    """Cluster shape and chaos knobs, keyword-only and immutable.

    Follows the :class:`~repro.serverless.scaler.ScalingConfig` pattern:
    hashable, picklable, with :meth:`fingerprint` so a cluster
    configuration can ride on a
    :class:`~repro.core.spec.MeasurementSpec` and participate in result
    cache identity — ``cluster=None`` everywhere keeps every digest,
    stat and event log byte-identical to the single-host implementation.

    ``nodes``
        Machines in the simulated cluster (>= 1).
    ``placement``
        Scheduler policy from :data:`PLACEMENT_POLICIES`; ties break
        toward the lowest node index, so placement is deterministic.
    ``node_capacity``
        Instances one node can host (across functions); ``None`` means
        the only clamp is the pool's ``max_instances``.
    ``hop_ticks``
        Per-direction latency of a cross-node hop; a request served off
        its ingress node pays ``2 * hop_ticks`` plus a wire-size term.
    ``node_fail_rate``
        Per-evaluation probability a live node fails (drawn at the
        ``cluster.node_down`` fault site; 0 disables node chaos).  A
        failure is only injected while at least two nodes are up — the
        cluster never blacks itself out entirely.
    ``node_recover_ticks``
        Ticks a failed node stays down before rejoining (empty — its
        containers died with it).
    """

    __slots__ = _CLUSTER_FIELDS

    def __init__(self, *, nodes: int = 1, placement: str = "binpack",
                 node_capacity: Optional[int] = None, hop_ticks: int = 6,
                 node_fail_rate: float = 0.0, node_recover_ticks: int = 600):
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if placement not in PLACEMENT_POLICIES:
            raise ValueError("placement must be one of %s, got %r"
                             % (", ".join(PLACEMENT_POLICIES), placement))
        if node_capacity is not None and node_capacity < 1:
            raise ValueError("node_capacity must be >= 1 (or None)")
        if hop_ticks < 0:
            raise ValueError("hop_ticks must be >= 0")
        if not 0.0 <= node_fail_rate <= 1.0:
            raise ValueError("node_fail_rate must be within [0, 1]")
        if node_recover_ticks < 1:
            raise ValueError("node_recover_ticks must be >= 1")
        set_field = object.__setattr__
        set_field(self, "nodes", int(nodes))
        set_field(self, "placement", placement)
        set_field(self, "node_capacity",
                  None if node_capacity is None else int(node_capacity))
        set_field(self, "hop_ticks", int(hop_ticks))
        set_field(self, "node_fail_rate", float(node_fail_rate))
        set_field(self, "node_recover_ticks", int(node_recover_ticks))

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("ClusterConfig is immutable; use replace()")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("ClusterConfig is immutable; use replace()")

    def replace(self, **changes) -> "ClusterConfig":
        """A copy with the given knobs swapped (dataclasses.replace style)."""
        fields: Dict[str, Any] = {name: getattr(self, name)
                                  for name in _CLUSTER_FIELDS}
        unknown = set(changes) - set(_CLUSTER_FIELDS)
        if unknown:
            raise TypeError("unknown cluster fields: %s" % sorted(unknown))
        fields.update(changes)
        return ClusterConfig(**fields)

    def fingerprint(self) -> Tuple:
        """Identity tuple for result-cache keying and spec equality."""
        return tuple(getattr(self, name) for name in _CLUSTER_FIELDS)

    def as_dict(self) -> Dict[str, Any]:
        """Round-trippable view (JSON exporters, :meth:`from_dict`)."""
        return {name: getattr(self, name) for name in _CLUSTER_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterConfig":
        """Inverse of :meth:`as_dict`."""
        return cls(**{name: data[name] for name in _CLUSTER_FIELDS})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterConfig):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return ("ClusterConfig(nodes=%d, placement=%r, capacity=%s, "
                "fail=%g)" % (self.nodes, self.placement,
                              self.node_capacity, self.node_fail_rate))

    # -- pickling (slots, no __dict__) -------------------------------------

    def __getstate__(self):
        return {name: getattr(self, name) for name in _CLUSTER_FIELDS}

    def __setstate__(self, state):
        for name in _CLUSTER_FIELDS:
            object.__setattr__(self, name, state[name])


class Node:
    """One cluster machine: its own engine, population count, health.

    Every node provisions its own container engine through the same
    :func:`~repro.serverless.engine.install_docker` path a single host
    uses (RISC-V nodes carry the built-from-source provenance), against
    a registry shared cluster-wide — push once, pull everywhere.  The
    node's :class:`~repro.serverless.rpc.RpcChannel` meters the wire
    bytes of requests its front-end forwarded to other nodes.
    """

    def __init__(self, index: int, arch: str,
                 registry: Optional[ImageRegistry] = None):
        self.index = index
        self.name = "n%d" % index
        self.engine: ContainerEngine = install_docker(arch)
        if registry is not None:
            self.engine.registry = registry
        self.up = True
        #: Instances currently placed here (across all pools).
        self.population = 0
        #: Times this node has failed.
        self.downs = 0
        self.channel = RpcChannel("node:%s" % self.name)

    def __repr__(self) -> str:
        return "Node(%s, %s, %d instance(s))" % (
            self.name, "up" if self.up else "DOWN", self.population)


class Platform:
    """What ``python -m repro serve`` programs against.

    The deployment-target seam: a platform owns engines and instance
    pools and turns an arrival trace into a
    :class:`~repro.serverless.router.ServeResult`.  Single-host and
    cluster deployments implement the same four methods, so callers
    never ask how many machines are behind the API — the shape SeBS
    gives real clouds, applied to the simulated one.
    """

    def deploy(self, name, image_name, runtime, handler, services=None,
               scaling=None, keepalive=None):
        """Register a function; returns its pool."""
        raise NotImplementedError

    def serve(self, name, arrivals, payload=None, payload_factory=None):
        """Drive one open-loop arrival trace to completion."""
        raise NotImplementedError

    def pool(self, name):
        """The deployed function's pool."""
        raise NotImplementedError

    @property
    def registry(self) -> ImageRegistry:
        """Where function images are pushed (shared cluster-wide)."""
        raise NotImplementedError

    @property
    def description(self) -> str:
        """One operator-facing line: what is this running on?"""
        raise NotImplementedError


class SingleHostPlatform(Platform):
    """Today's path: one router on one implicit host, bit-identically.

    A thin delegate around :class:`~repro.serverless.router.Router` —
    it adds no state and draws nothing, so serving through it produces
    byte-identical records, events and samples to driving the router
    directly (asserted by the platform tests).
    """

    def __init__(self, engine: Optional[ContainerEngine] = None, *,
                 arch: str = "riscv", seed: int = 0, server_core: int = 1,
                 tracer=None, faults=None):
        self.router = Router(engine if engine is not None
                             else install_docker(arch),
                             seed=seed, server_core=server_core,
                             tracer=tracer, faults=faults)

    def deploy(self, name, image_name, runtime, handler, services=None,
               scaling=None, keepalive=None):
        return self.router.deploy(name, image_name, runtime, handler,
                                  services=services, scaling=scaling,
                                  keepalive=keepalive)

    def serve(self, name, arrivals, payload=None, payload_factory=None):
        return self.router.serve(name, arrivals, payload=payload,
                                 payload_factory=payload_factory)

    def pool(self, name):
        return self.router.pool(name)

    @property
    def registry(self) -> ImageRegistry:
        return self.router.engine.registry

    @property
    def description(self) -> str:
        return "single %s host" % self.router.engine.arch

    def __repr__(self) -> str:
        return "SingleHostPlatform(%r)" % self.router


class ClusterPlatform(Router, Platform):
    """N nodes behind the router's event loop, scheduled per config.

    Subclasses the router and overrides exactly its platform hook
    points, so the queueing/autoscaling engine is shared, not forked:

    * **placement** — a new instance boots on the node the policy
      picks (``binpack``: most-loaded live node with spare capacity;
      ``spread``: least-loaded; ties to the lowest index);
    * **ingress + hops** — arrivals enter round-robin across live
      nodes; a request dispatched to an instance on another node pays
      ``2 * hop_ticks`` plus a wire-size term, metered on the record
      (``serve.cross_node`` / ``serve.hop_ticks``) and on the ingress
      node's channel;
    * **node chaos** — each autoscaler evaluation draws at the
      ``cluster.node_down`` fault site; a fire crashes a live node
      (containers lost, in-flight requests fail with
      :class:`~repro.faults.NodeDownError`) and schedules its recovery
      ``node_recover_ticks`` later.
    """

    def __init__(self, cluster: ClusterConfig, *, arch: str = "riscv",
                 seed: int = 0, server_core: int = 1, tracer=None,
                 faults=None):
        self.cluster = cluster
        shared_registry = ImageRegistry()
        self.nodes = [Node(index, arch, registry=shared_registry)
                      for index in range(cluster.nodes)]
        super().__init__(self.nodes[0].engine, seed=seed,
                         server_core=server_core, tracer=tracer,
                         faults=faults)
        if faults is not None:
            for node in self.nodes:
                if node.engine.faults is None:
                    node.engine.faults = faults
        if cluster.node_fail_rate > 0.0:
            plan = FaultPlan(seed=seed, specs=[
                FaultSpec("cluster.node_down", cluster.node_fail_rate)])
            self._node_faults = plan.arm()
            # Victim selection has its own stream (crc32, not hash():
            # str hashing is salted per process) so arming chaos never
            # perturbs the pool's service-jitter draws.
            self._chaos_rng = random.Random(
                zlib.crc32(b"cluster.chaos") ^ (seed * 0x9E3779B1))
        else:
            self._node_faults = None
            self._chaos_rng = None

    # -- Platform surface --------------------------------------------------

    def deploy(self, name, image_name, runtime, handler, services=None,
               scaling=None, keepalive=None):
        pool = super().deploy(name, image_name, runtime, handler,
                              services=services, scaling=scaling,
                              keepalive=keepalive)
        # The base deploy pulled onto node 0; every other node pulls the
        # image too (same shared registry), so any node can host.
        for node in self.nodes[1:]:
            node.engine.pull(image_name)
        return pool

    @property
    def registry(self) -> ImageRegistry:
        return self.nodes[0].engine.registry

    @property
    def description(self) -> str:
        return "%d-node %s cluster (%s placement)" % (
            self.cluster.nodes, self.nodes[0].engine.arch,
            self.cluster.placement)

    # -- router hook points ------------------------------------------------

    def _make_result(self, pool) -> ServeResult:
        return ServeResult(pool.name, pool.scaling, cluster=self.cluster)

    def _place(self, pool):
        capacity = self.cluster.node_capacity
        binpack = self.cluster.placement == "binpack"
        best = None
        for node in self.nodes:
            if not node.up:
                continue
            if capacity is not None and node.population >= capacity:
                continue
            if best is None:
                best = node
            elif binpack and node.population > best.population:
                best = node
            elif not binpack and node.population < best.population:
                best = node
        if best is None:
            return None
        return (best.engine, best)

    def _note_boot(self, pool, instance, node) -> None:
        node.population += 1

    def _note_remove(self, pool, instance) -> None:
        node = instance.node
        if node is not None:
            node.population -= 1
            instance.node = None

    def _ingress_for(self, pool, record):
        # Round-robin front-end load balancing; a down front-end's
        # traffic shifts to the next live node (deterministically).
        start = (record.sequence - 1) % len(self.nodes)
        for offset in range(len(self.nodes)):
            node = self.nodes[(start + offset) % len(self.nodes)]
            if node.up:
                return node
        return self.nodes[start]

    def _candidate_for(self, pool, request):
        # Prefer an instance on the ingress node (no hop); fall back to
        # the first remote instance with spare concurrency.  At one node
        # this is exactly the base router's first-fit.
        target = pool.scaling.target_concurrency
        ingress = request.ingress
        fallback = None
        for instance in pool.instances:
            if instance.ready and instance.busy < target \
                    and not instance.doomed:
                if ingress is None or instance.node is ingress:
                    return instance
                if fallback is None:
                    fallback = instance
        return fallback

    def _hop_penalty(self, pool, instance, request) -> int:
        record = request.record
        node = instance.node
        if len(self.nodes) > 1:
            # Node attribution (only in real clusters, so one-node
            # records stay byte-identical to single-host ones).
            record.meter("serve.node", node.index)
        ingress = request.ingress
        if ingress is None or node is ingress:
            return 0
        # Forwarded across the machine boundary: the ingress front-end
        # proxies the request there and the response back, so the wire
        # cost follows the rpc channel model — a fixed per-direction
        # latency plus a size-proportional term over the same encoded
        # byte counts RpcChannel meters.
        ingress.channel.bytes_out += record.request_bytes
        ingress.channel.bytes_in += record.response_bytes
        wire_bytes = record.request_bytes + record.response_bytes
        penalty = 2 * self.cluster.hop_ticks + wire_bytes // 256
        record.meter("serve.cross_node")
        record.meter("serve.hop_ticks", penalty)
        return penalty

    def _on_depart(self, pool, heap, order, result, data) -> None:
        instance, _record = data
        if instance.lost:
            return  # failed with its node; nothing left to account
        super()._on_depart(pool, heap, order, result, data)

    def _on_eval(self, pool, heap, order, result) -> None:
        self._maybe_fail_node(pool, heap, order, result)
        super()._on_eval(pool, heap, order, result)

    def _on_extra(self, pool, heap, order, result, kind, data) -> None:
        if kind != "node-up":
            super()._on_extra(pool, heap, order, result, kind, data)
            return
        node = data
        node.up = True
        self._emit(result, pool, ScalingEvent.NODE_UP,
                   len(pool.instances), len(pool.instances),
                   "%s recovered after %d ticks"
                   % (node.name, self.cluster.node_recover_ticks))
        self._dispatch(pool, heap, order, result)
        self._observe(pool, result)

    def _sample(self, pool, result) -> None:
        super()._sample(pool, result)
        if len(self.nodes) <= 1:
            return
        counts = tuple(node.population for node in self.nodes)
        if result.node_samples and result.node_samples[-1][1] == counts:
            return
        result.node_samples.append((self.now, counts))

    # -- node chaos --------------------------------------------------------

    def _maybe_fail_node(self, pool, heap, order, result) -> None:
        injector = self._node_faults
        if injector is None:
            return
        live = [node for node in self.nodes if node.up]
        if len(live) <= 1:
            return  # never black out the whole cluster
        if not injector.should_fire("cluster.node_down"):
            return
        victim = live[self._chaos_rng.randrange(len(live))]
        self._fail_node(pool, heap, order, result, victim)

    def _fail_node(self, pool, heap, order, result, victim) -> None:
        """Crash ``victim`` now: containers die, in-flight work fails."""
        victim.up = False
        victim.downs += 1
        victim.engine.crash()
        lost = [instance for instance in list(pool.instances)
                if instance.node is victim]
        failure = NodeDownError("node %s went down mid-request"
                                % victim.name)
        for instance in lost:
            for record in instance.inflight:
                record.error = "%s: %s" % (type(failure).__name__, failure)
                record.result = {"error": record.error}
                record.meter("faults.cluster.node_down")
            instance.inflight = []
            instance.busy = 0
            instance.lost = True
            instance.state = FunctionState.DEAD
            instance.container_name = None
            pool.instances.remove(instance)
            self._note_remove(pool, instance)
        self._emit(result, pool, ScalingEvent.NODE_DOWN,
                   len(pool.instances) + len(lost), len(pool.instances),
                   "%s down, %d instance(s) lost"
                   % (victim.name, len(lost)))
        heapq.heappush(heap, (self.now + self.cluster.node_recover_ticks,
                              next(order), "node-up", victim))
        self._dispatch(pool, heap, order, result)
        self._observe(pool, result)

    def __repr__(self) -> str:
        return "ClusterPlatform(%d nodes, %d pools, now=%d)" % (
            len(self.nodes), len(self._pools), self.now)


def make_platform(arch: str, *, cluster: Optional[ClusterConfig] = None,
                  seed: int = 0, server_core: int = 1, tracer=None,
                  faults=None) -> Platform:
    """Build the platform a serve run targets.

    ``cluster=None`` (the default) is the single-host path, byte-
    identical to constructing a router directly; any
    :class:`ClusterConfig` — including ``nodes=1`` — builds a
    :class:`ClusterPlatform`.
    """
    if cluster is None:
        return SingleHostPlatform(arch=arch, seed=seed,
                                  server_core=server_core, tracer=tracer,
                                  faults=faults)
    return ClusterPlatform(cluster, arch=arch, seed=seed,
                           server_core=server_core, tracer=tracer,
                           faults=faults)
