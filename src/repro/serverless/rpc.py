"""gRPC-like request/response layer.

Every vSwarm function sits behind an RPC server; the client performs
requests and the measured interval is request-to-reply (§4.1.2.3).  The
channel meters marshalling work (wire bytes both ways) so the workload
models can charge serialization instructions proportional to real payload
sizes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.db.engine import encoded_size


class RpcError(RuntimeError):
    """Remote call failed (unknown method, handler raised, bad payload)."""


class RpcRequest:
    """One marshalled request."""

    __slots__ = ("method", "payload", "wire_bytes")

    def __init__(self, method: str, payload: Optional[Dict[str, Any]] = None):
        self.method = method
        self.payload = payload or {}
        self.wire_bytes = encoded_size({"method": method, "payload": self.payload})

    def __repr__(self) -> str:
        return "RpcRequest(%s, %dB)" % (self.method, self.wire_bytes)


class RpcResponse:
    """One marshalled response."""

    __slots__ = ("payload", "status", "wire_bytes")

    def __init__(self, payload: Any, status: str = "OK"):
        self.payload = payload
        self.status = status
        self.wire_bytes = encoded_size({"status": status, "payload": payload})

    @property
    def ok(self) -> bool:
        return self.status == "OK"

    def __repr__(self) -> str:
        return "RpcResponse(%s, %dB)" % (self.status, self.wire_bytes)


class RpcChannel:
    """A point-to-point channel with registered service methods."""

    def __init__(self, name: str = "channel"):
        self.name = name
        self._methods: Dict[str, Callable[[Dict[str, Any]], Any]] = {}
        self.requests_served = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Optional :class:`repro.faults.FaultInjector`; calls then consult
        #: the ``rpc.drop`` / ``rpc.latency`` hook sites.  Same
        #: guard-on-``None`` discipline as everywhere else.
        self.faults = None
        #: Optional :class:`repro.obs.Tracer`; injected latency spikes
        #: then appear as spans on the faults track.
        self.tracer = None
        self.drops = 0
        self.latency_ticks = 0

    def register(self, method: str, handler: Callable[[Dict[str, Any]], Any]) -> None:
        if method in self._methods:
            raise ValueError("method %r already registered on %s" % (method, self.name))
        self._methods[method] = handler

    def call(self, method: str, payload: Optional[Dict[str, Any]] = None) -> RpcResponse:
        request = RpcRequest(method, payload)
        self.bytes_in += request.wire_bytes
        faults = self.faults
        if faults is not None:
            if faults.should_fire("rpc.drop"):
                # The request never reaches the server: the client sees
                # UNAVAILABLE, the canonical retryable gRPC status.
                self.drops += 1
                response = RpcResponse(
                    {"error": "injected drop on %s" % self.name},
                    status="UNAVAILABLE",
                )
                self.bytes_out += response.wire_bytes
                return response
            if faults.should_fire("rpc.latency"):
                ticks = faults.ticks_for("rpc.latency")
                self.latency_ticks += ticks
                tracer = self.tracer
                if tracer is not None and ticks:
                    from repro.obs.tracer import TRACK_FAULTS

                    start = tracer.now
                    tracer.advance(ticks)
                    tracer.complete("rpc-latency-spike", "fault", start,
                                    ticks, TRACK_FAULTS,
                                    args={"method": method})
        handler = self._methods.get(method)
        if handler is None:
            raise RpcError("UNIMPLEMENTED: no method %r on %s" % (method, self.name))
        try:
            result = handler(request.payload)
        except RpcError:
            raise
        except Exception as error:  # noqa: BLE001 - surface as RPC status
            response = RpcResponse({"error": str(error)}, status="INTERNAL")
            self.bytes_out += response.wire_bytes
            return response
        response = RpcResponse(result)
        self.requests_served += 1
        self.bytes_out += response.wire_bytes
        return response

    def methods(self):
        return sorted(self._methods)

    def wire_stats(self) -> Dict[str, int]:
        """Cumulative wire-level counters, one dict per channel.

        The serving router gives every pool instance its own channel, so
        these counters are *per instance* — dashboards and tests can sum
        them across a pool or diff them around a single call without
        poking at individual attributes.
        """
        return {
            "requests_served": self.requests_served,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "drops": self.drops,
            "latency_ticks": self.latency_ticks,
        }

    def __repr__(self) -> str:
        return "RpcChannel(%s, %d methods, %d served)" % (
            self.name, len(self._methods), self.requests_served,
        )
