"""Multi-instance serving: a deterministic tick-clock router per function.

This is the serving layer the measurement pipeline deliberately lacks:
where :class:`~repro.serverless.faas.FaasPlatform` drives exactly one
instance per function (the paper's Fig 4.1 protocol), the router puts a
**pool** of :class:`~repro.serverless.faas.FunctionInstance`-derived
workers behind a bounded FIFO queue with admission control, and lets a
:class:`~repro.serverless.scaler.ConcurrencyAutoscaler` grow and shrink
the pool as open-loop traffic contends for it.  Bursts then produce what
the cold/warm dichotomy predicts at service level: queue build-up,
panic-mode scale-ups, cold-start storms, and sojourn-time tails.

Mechanics
---------
The router runs a discrete-event simulation on an integer tick clock:

* **arrival** — a request from the arrival trace reaches the function's
  queue; beyond ``queue_capacity`` it is rejected (admission control,
  metered ``serve.rejected``);
* **ready** — a booting instance finishes its cold start (container
  engine create+start costs plus ``cold_start_ticks`` runtime init,
  plus any injected ``faas.cold_start`` stall) and starts draining the
  queue; the first request it serves is its **cold** request;
* **depart** — a request completes after its service ticks; crashed
  instances are recycled (stop+remove through the real container
  engine), not kept warm;
* **eval** — the autoscaler compares windowed observed concurrency
  against per-instance target concurrency and scales the pool; idle
  instances are reaped through the existing
  :class:`~repro.serverless.faas.KeepAlivePolicy` (scale-to-zero).

Handlers execute *functionally* through a per-instance
:class:`~repro.serverless.rpc.RpcChannel` (real results, real receipts,
real wire-byte metering, per-instance ``rpc.*``/``faas.*``/``engine.*``
fault sites), while request *timing* comes from a deterministic
service-tick model — the cycle-accurate path remains the measurement
pipeline (`python -m repro measure`), which this layer leaves
bit-identical.  Every tick, queue decision and jitter draw derives from
the run's seed: two serves with the same seed produce byte-identical
records and scaling-event logs.
"""

from __future__ import annotations

import heapq
import itertools
import random
import zlib
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.db.engine import encoded_size
from repro.obs.tracer import TRACK_SCALING
from repro.serverless.engine import ENGINE_OP_COSTS, ContainerEngine, EngineError
from repro.serverless.faas import (
    FunctionInstance,
    FunctionState,
    Handler,
    InvocationContext,
    InvocationRecord,
    KeepAlivePolicy,
    drain_service_meters,
    harvest_service_meters,
)
from repro.serverless.metrics import percentile
from repro.serverless.rpc import RpcChannel
from repro.serverless.scaler import (
    ConcurrencyAutoscaler,
    ScalingConfig,
    ScalingEvent,
)

#: Warm service ticks per runtime before payload/jitter terms — the same
#: interpreted-vs-compiled ordering the measured cycle numbers show
#: (Fig 4.4), collapsed to router granularity.  Serving-layer timing is a
#: queueing model, not a cycle model; see docs/METHODOLOGY.md.
SERVICE_BASE_TICKS = {"python": 48, "nodejs": 28, "go": 14}

#: Fallback for runtimes outside the table.
DEFAULT_SERVICE_TICKS = 32

#: Engine-side share of a cold start, from the deterministic op costs.
BOOT_ENGINE_TICKS = ENGINE_OP_COSTS["create"] + ENGINE_OP_COSTS["start"]


class QueuedRequest:
    """One admitted arrival waiting for (or holding) an instance."""

    __slots__ = ("sequence", "arrival", "payload", "record", "ingress")

    def __init__(self, sequence: int, arrival: int, payload: Dict[str, Any],
                 record: InvocationRecord):
        self.sequence = sequence
        self.arrival = arrival
        self.payload = payload
        self.record = record
        #: Front-end node the request entered through (cluster platforms
        #: only; ``None`` on a single host).
        self.ingress = None

    def __repr__(self) -> str:
        return "QueuedRequest(#%d @ %d)" % (self.sequence, self.arrival)


class PooledInstance(FunctionInstance):
    """A pool member: a FunctionInstance plus serving-side state.

    Adds what a single-instance lifecycle never needed: a stable pool
    ``index`` (container names stay unique and deterministic), a
    ``busy`` in-flight count bounded by the pool's target concurrency, a
    ``ready_at`` tick (cold start completes), and a per-instance
    :class:`~repro.serverless.rpc.RpcChannel` so RPC metering and fault
    sites fire per instance, not per function.
    """

    def __init__(self, name: str, image_name: str, runtime: str,
                 handler: Handler, services: Dict[str, Any], index: int):
        super().__init__(name, image_name, runtime, handler, services)
        self.index = index
        self.busy = 0
        self.ready_at = 0
        #: True until this instance serves its first request — that
        #: request is the pool's cold invocation for this instance.
        self.cold_pending = True
        #: Set when a handler crash dooms the container; it is recycled
        #: once its in-flight requests drain.
        self.doomed = False
        self.channel = RpcChannel("%s#i%d" % (name, index))
        self.channel.register("invoke", self._rpc_invoke)
        self._pending_context: Optional[InvocationContext] = None
        #: Engine the instance's container lives on (set at boot); a
        #: cluster platform points this at the chosen node's engine.
        self.host_engine = None
        #: Cluster node hosting the instance (``None`` on a single host).
        self.node = None
        #: Set when the hosting node died: the container is gone without
        #: an engine stop/remove, and pending departures are void.
        self.lost = False
        #: Records currently executing on this instance (so a node
        #: failure can fail exactly the in-flight work).
        self.inflight: List[InvocationRecord] = []

    def _rpc_invoke(self, payload: Dict[str, Any]) -> Any:
        return self.handler(payload, self._pending_context)

    @property
    def ready(self) -> bool:
        return self.state != FunctionState.DEAD

    def __repr__(self) -> str:
        return "PooledInstance(%s#i%d, %s, busy=%d)" % (
            self.name, self.index, self.state, self.busy,
        )


class FunctionPool:
    """Everything the router tracks for one deployed function."""

    def __init__(self, name: str, image_name: str, runtime: str,
                 handler: Handler, services: Dict[str, Any],
                 scaling: ScalingConfig, keepalive: KeepAlivePolicy,
                 seed: int):
        self.name = name
        self.image_name = image_name
        self.runtime = runtime
        self.handler = handler
        self.services = services
        self.scaling = scaling
        self.keepalive = keepalive
        self.autoscaler = ConcurrencyAutoscaler(scaling, name)
        self.instances: List[PooledInstance] = []
        self.queue: deque = deque()
        #: Monotone pool-index counter; never reused, so container names
        #: are unique across recycles.
        self.next_index = 0
        #: Per-function request sequence (admitted and rejected alike).
        self.sequence = 0
        self.last_active = 0
        #: Eval ticks already scheduled (dedup for the event heap).
        self.scheduled_evals: set = set()
        # zlib.crc32, NOT hash(): str hashing is salted per process, and
        # the pool's jitter stream must be identical across runs.
        self.rng = random.Random(
            zlib.crc32(name.encode("utf-8")) ^ (seed * 0x9E3779B1))

    @property
    def in_flight(self) -> int:
        """Demand signal the autoscaler watches: executing + queued."""
        return sum(inst.busy for inst in self.instances) + len(self.queue)

    @property
    def ready_count(self) -> int:
        return sum(1 for inst in self.instances if inst.ready)

    def __repr__(self) -> str:
        return "FunctionPool(%s: %d instances, %d queued)" % (
            self.name, len(self.instances), len(self.queue),
        )


class ServeResult:
    """Everything one serve run produced: records, events, timeline."""

    def __init__(self, function: str, scaling: ScalingConfig, cluster=None):
        self.function = function
        self.scaling = scaling
        #: Optional :class:`~repro.serverless.platform.ClusterConfig` the
        #: run was served under; ``None`` means a single host, and every
        #: rendering below then stays byte-identical to the pre-cluster
        #: implementation.
        self.cluster = cluster
        #: Invocation records in arrival order (rejections included).
        self.records: List[InvocationRecord] = []
        self.events: List[ScalingEvent] = []
        #: ``(tick, queue_depth, in_flight, instances)`` on every change.
        self.samples: List[Tuple[int, int, int, int]] = []
        #: ``(tick, (instances on node 0, node 1, ...))`` whenever the
        #: per-node placement changes — only populated by multi-node
        #: cluster platforms.
        self.node_samples: List[Tuple[int, Tuple[int, ...]]] = []
        #: Tick the last departure or scaling action happened at.
        self.finished_at = 0

    # -- outcome accessors -------------------------------------------------

    @property
    def admitted(self) -> List[InvocationRecord]:
        return [r for r in self.records if "serve.rejected" not in r.metrics]

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if "serve.rejected" in r.metrics)

    @property
    def errors(self) -> int:
        return sum(1 for r in self.admitted if not r.ok)

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.admitted if r.cold)

    @property
    def peak_instances(self) -> int:
        return max((s[3] for s in self.samples), default=0)

    @property
    def max_queue_depth(self) -> int:
        return max((s[1] for s in self.samples), default=0)

    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.kind == ScalingEvent.UP)

    def scale_downs(self) -> int:
        return sum(1 for e in self.events
                   if e.kind in (ScalingEvent.DOWN, ScalingEvent.TO_ZERO))

    def node_failures(self) -> int:
        return sum(1 for e in self.events
                   if e.kind == ScalingEvent.NODE_DOWN)

    @property
    def cross_node(self) -> int:
        """Requests served on a node other than their ingress node."""
        return sum(1 for r in self.records
                   if "serve.cross_node" in r.metrics)

    def sojourns(self) -> List[int]:
        """Queue + service ticks per admitted request, arrival order."""
        return [int(r.metrics["timing.sojourn_ticks"]) for r in self.admitted]

    def queue_delays(self) -> List[int]:
        """Queueing ticks per admitted request, arrival order."""
        return [int(r.metrics["timing.queue_ticks"]) for r in self.admitted]

    def sojourn_percentile(self, fraction: float) -> float:
        return percentile(self.sojourns(), fraction)

    # -- rendering ---------------------------------------------------------

    def event_log(self) -> str:
        """The scaling decisions, one canonical line each.

        Byte-identical across runs with the same seed — the serve-smoke
        CI job and the determinism test diff exactly this text.
        """
        return "\n".join(event.format() for event in self.events)

    def summary(self) -> str:
        """The operator's report: admission, scaling, queueing, tails."""
        lines = []
        admitted = self.admitted
        lines.append(
            "served %d/%d requests (%d rejected, %d errors), "
            "%d cold start(s)" % (
                len(admitted), len(self.records), self.rejected,
                self.errors, self.cold_starts))
        lines.append(
            "instances: peak %d (clamp %d..%d), %d scale-up(s), "
            "%d scale-down(s)" % (
                self.peak_instances, self.scaling.min_instances,
                self.scaling.max_instances, self.scale_ups(),
                self.scale_downs()))
        delays = self.queue_delays()
        if delays:
            lines.append("queue: depth max %d, delay mean %.1f max %d ticks"
                         % (self.max_queue_depth,
                            sum(delays) / float(len(delays)), max(delays)))
        sojourns = self.sojourns()
        if sojourns:
            lines.append(
                "sojourn ticks: p50 %.0f  p95 %.0f  p99 %.0f  (max %d)" % (
                    percentile(sojourns, 0.50), percentile(sojourns, 0.95),
                    percentile(sojourns, 0.99), max(sojourns)))
        if self.cluster is not None and self.cluster.nodes > 1:
            lines.append(
                "cluster: %d nodes (%s), %d node failure(s), "
                "%d cross-node request(s)" % (
                    self.cluster.nodes, self.cluster.placement,
                    self.node_failures(), self.cross_node))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready artifact (``python -m repro serve --out``).

        Cluster keys appear only when a cluster config is attached, so
        single-host artifacts stay byte-identical to pre-cluster ones.
        """
        data = {
            "function": self.function,
            "scaling": self.scaling.as_dict(),
            "records": [record.as_dict() for record in self.records],
            "events": [event.as_dict() for event in self.events],
            "samples": [list(sample) for sample in self.samples],
            "finished_at": self.finished_at,
        }
        if self.cluster is not None:
            data["cluster"] = self.cluster.as_dict()
            data["node_samples"] = [[tick, list(counts)]
                                    for tick, counts in self.node_samples]
        return data

    def __repr__(self) -> str:
        return "ServeResult(%s: %d records, %d events)" % (
            self.function, len(self.records), len(self.events),
        )


class Router:
    """Routes open-loop arrivals onto autoscaled instance pools.

    One router fronts one container engine; each deployed function gets
    its own pool, queue and autoscaler.  The router owns the logical
    tick clock (``router.now``) — it never touches an attached tracer's
    clock, it stamps spans with its own ticks, so serving can be traced
    alongside other subsystems without perturbing them.
    """

    def __init__(self, engine: ContainerEngine, *, seed: int = 0,
                 server_core: int = 1, tracer=None, faults=None):
        self.engine = engine
        self.seed = seed
        self.server_core = server_core
        self.now = 0
        #: Optional :class:`repro.obs.Tracer`; scaling decisions, queue
        #: depth and per-request sojourns then land on ``TRACK_SCALING``.
        self.tracer = tracer
        #: Optional :class:`repro.faults.FaultInjector`; consulted at the
        #: per-instance ``engine.*``, ``faas.*`` and ``rpc.*`` sites.
        self.faults = faults
        if faults is not None and engine.faults is None:
            engine.faults = faults
        self._pools: Dict[str, FunctionPool] = {}

    # -- deployment --------------------------------------------------------

    def deploy(self, name: str, image_name: str, runtime: str,
               handler: Handler, services: Optional[Dict[str, Any]] = None,
               scaling: Optional[ScalingConfig] = None,
               keepalive: Optional[KeepAlivePolicy] = None) -> FunctionPool:
        """Register a function as an (initially empty) instance pool."""
        if name in self._pools:
            raise ValueError("function %r already deployed" % name)
        scaling = scaling or ScalingConfig()
        if keepalive is None:
            keepalive = KeepAlivePolicy(
                idle_timeout=scaling.scale_to_zero_after,
                max_warm=scaling.max_instances)
        self.engine.pull(image_name)
        pool = FunctionPool(name, image_name, runtime, handler,
                            services or {}, scaling, keepalive, self.seed)
        self._pools[name] = pool
        return pool

    def pool(self, name: str) -> FunctionPool:
        try:
            return self._pools[name]
        except KeyError:
            raise KeyError("no function %r deployed (have %s)"
                           % (name, sorted(self._pools))) from None

    # -- the serve loop ----------------------------------------------------

    def serve(self, name: str, arrivals: List[int],
              payload: Optional[Dict[str, Any]] = None,
              payload_factory: Optional[Callable[[int], Dict[str, Any]]] = None,
              ) -> ServeResult:
        """Drive one open-loop arrival trace to completion.

        ``arrivals`` is a non-decreasing list of integer ticks (see
        :func:`repro.serverless.loadgen.arrival_ticks`).  The event loop
        runs until every admitted request departs and the pool has
        settled back to its floor — so the result includes the tail:
        drain, idle-timeout reaping and scale-to-zero.
        """
        if payload is not None and payload_factory is not None:
            raise ValueError("pass payload or payload_factory, not both")
        pool = self.pool(name)
        result = self._make_result(pool)
        heap: List[Tuple[int, int, str, Any]] = []
        order = itertools.count()
        previous = None
        for index, tick in enumerate(arrivals):
            tick = int(tick)
            if previous is not None and tick < previous:
                raise ValueError("arrival ticks must be non-decreasing")
            previous = tick
            heapq.heappush(heap, (tick, next(order), "arrival", index))

        while heap:
            tick, _, kind, data = heapq.heappop(heap)
            self.now = tick
            if kind == "arrival":
                self._on_arrival(pool, heap, order, result,
                                 data, payload, payload_factory)
            elif kind == "ready":
                self._on_ready(pool, heap, order, result, data)
            elif kind == "depart":
                self._on_depart(pool, heap, order, result, data)
            elif kind == "eval":
                pool.scheduled_evals.discard(tick)
                self._on_eval(pool, heap, order, result)
            else:
                # Platform-specific events (e.g. a cluster node's
                # recovery); the base router knows none.
                self._on_extra(pool, heap, order, result, kind, data)
            self._schedule_eval(pool, heap, order)
        result.finished_at = self.now
        return result

    def _make_result(self, pool) -> ServeResult:
        """Build the result object (platforms attach their config here)."""
        return ServeResult(pool.name, pool.scaling)

    def _on_extra(self, pool, heap, order, result, kind, data) -> None:
        raise ValueError("unknown serve event kind %r" % kind)

    # -- event handlers ----------------------------------------------------

    def _on_arrival(self, pool, heap, order, result, index, payload,
                    payload_factory) -> None:
        body = payload_factory(index) if payload_factory else (payload or {})
        pool.sequence += 1
        pool.last_active = self.now
        record = InvocationRecord(
            function=pool.name, runtime=pool.runtime, cold=False,
            request_bytes=encoded_size(body), sequence=pool.sequence)
        result.records.append(record)
        if len(pool.queue) >= pool.scaling.queue_capacity:
            # Admission control: the queue is full, shed the request.
            record.error = ("rejected: queue full (capacity %d)"
                            % pool.scaling.queue_capacity)
            record.result = {"error": record.error}
            record.meter("serve.rejected")
            self._trace_instant("rejected", {"sequence": record.sequence})
            self._sample(pool, result)
            return
        request = QueuedRequest(pool.sequence, self.now, body, record)
        request.ingress = self._ingress_for(pool, record)
        pool.queue.append(request)
        if not pool.instances:
            # Scale from zero immediately (the activator path): the
            # periodic evaluation would add avoidable queueing delay.
            self._on_eval(pool, heap, order, result)
        self._dispatch(pool, heap, order, result)
        self._observe(pool, result)

    def _on_ready(self, pool, heap, order, result, instance) -> None:
        if instance not in pool.instances:
            return  # recycled while booting
        instance.state = FunctionState.WAITING
        instance.last_used = self.now
        self._dispatch(pool, heap, order, result)
        self._observe(pool, result)

    def _on_depart(self, pool, heap, order, result, data) -> None:
        instance, record = data
        if instance.lost:
            # The hosting node died mid-flight: the record was already
            # failed at death time and the instance reclaimed.
            return
        if record in instance.inflight:
            instance.inflight.remove(record)
        instance.busy -= 1
        instance.invocations += 1
        instance.last_used = self.now
        pool.last_active = self.now
        if instance.busy == 0:
            instance.state = FunctionState.WAITING
        if instance.doomed and instance.busy == 0:
            # A crashed container is recycled, not kept warm — same
            # policy as FaasPlatform.kill, but per pool member.
            self._remove_instance(pool, instance)
            self._emit(result, pool, ScalingEvent.RECYCLE,
                       len(pool.instances) + 1, len(pool.instances),
                       "instance i%d crashed" % instance.index)
        self._dispatch(pool, heap, order, result)
        self._observe(pool, result)

    def _on_eval(self, pool, heap, order, result) -> None:
        scaling = pool.scaling
        total = len(pool.instances)
        want, transition = pool.autoscaler.desired(self.now, pool.ready_count)
        if transition is not None:
            kind = (ScalingEvent.PANIC_ENTER
                    if transition == "panic-enter" else ScalingEvent.PANIC_EXIT)
            self._emit(result, pool, kind, total, total,
                       "window avg crossed %.1fx capacity"
                       % scaling.panic_threshold
                       if transition == "panic-enter" else "demand subsided")
        if want > total:
            booted = 0
            for _ in range(want - total):
                if len(pool.instances) >= scaling.max_instances:
                    break
                if self._boot_instance(pool, heap, order, result):
                    booted += 1
            if booted:
                self._emit(result, pool, ScalingEvent.UP, total,
                           len(pool.instances),
                           "%s demand, in-flight %d" % (
                               "panic" if pool.autoscaler.panicking
                               else "stable", pool.in_flight))
        elif want < total and not pool.autoscaler.panicking:
            removed = self._remove_idle(pool, total - want,
                                        floor=scaling.min_instances)
            if removed:
                self._emit(result, pool, ScalingEvent.DOWN, total,
                           len(pool.instances),
                           "stable window wants %d" % want)
        # Scale-to-zero: the keep-alive policy reaps instances idle past
        # the timeout, down to the configured floor.
        before = len(pool.instances)
        victims = pool.keepalive.victims(pool.instances, self.now)
        for victim in victims:
            if len(pool.instances) <= pool.scaling.min_instances:
                break
            if victim.busy == 0:
                self._remove_instance(pool, victim)
        if len(pool.instances) < before:
            kind = (ScalingEvent.TO_ZERO if not pool.instances
                    else ScalingEvent.DOWN)
            self._emit(result, pool, kind, before, len(pool.instances),
                       "idle %d ticks" % pool.keepalive.idle_timeout)
        self._observe(pool, result)

    # -- pool mechanics ----------------------------------------------------

    def _boot_instance(self, pool, heap, order, result) -> bool:
        """Start one cold instance; False when the boot itself failed."""
        placement = self._place(pool)
        if placement is None:
            # A cluster with every live node at capacity; a single host
            # never refuses (its only clamp is max_instances, applied by
            # the caller).
            self._emit(result, pool, ScalingEvent.BOOT_FAILED,
                       len(pool.instances), len(pool.instances),
                       "no node with spare capacity")
            return False
        engine, node = placement
        index = pool.next_index
        pool.next_index += 1
        instance = PooledInstance(pool.name, pool.image_name, pool.runtime,
                                  pool.handler, pool.services, index)
        container_name = "%s-i%d" % (pool.name, index)
        try:
            engine.create(pool.image_name, name=container_name,
                          cpu_pin=self.server_core)
        except EngineError as failure:
            self._emit(result, pool, ScalingEvent.BOOT_FAILED,
                       len(pool.instances), len(pool.instances),
                       "create i%d: %s" % (index, failure))
            return False
        try:
            engine.start(container_name)
        except EngineError as failure:
            try:  # never leave a created-but-dead container behind
                engine.remove(container_name)
            except EngineError:
                pass
            self._emit(result, pool, ScalingEvent.BOOT_FAILED,
                       len(pool.instances), len(pool.instances),
                       "start i%d: %s" % (index, failure))
            return False
        boot_ticks = BOOT_ENGINE_TICKS + pool.scaling.cold_start_ticks
        faults = self.faults
        if faults is not None and faults.should_fire("faas.cold_start"):
            # Injected provisioning stall (scheduler delay, image-layer
            # fetch hiccup): elapses boot time, does not fail the boot.
            boot_ticks += faults.ticks_for("faas.cold_start")
        instance.container_name = container_name
        instance.host_engine = engine
        instance.node = node
        instance.cold_starts = 1
        instance.ready_at = self.now + boot_ticks
        instance.local = {}
        pool.instances.append(instance)
        self._note_boot(pool, instance, node)
        heapq.heappush(heap, (instance.ready_at, next(order), "ready",
                              instance))
        self._trace_span("cold-boot:i%d" % index, self.now, boot_ticks,
                         {"function": pool.name, "container": container_name})
        return True

    # -- platform hook points ----------------------------------------------
    #
    # A single host is the degenerate cluster: one engine, no placement
    # choice, no ingress hop.  Cluster platforms override exactly these
    # hooks; at one node every override reduces to the base behaviour, so
    # the two paths stay bit-identical (asserted by the platform tests).

    def _place(self, pool):
        """Choose where a new instance boots: ``(engine, node)`` or None."""
        return (self.engine, None)

    def _note_boot(self, pool, instance, node) -> None:
        """Placement bookkeeping after a successful boot."""

    def _note_remove(self, pool, instance) -> None:
        """Placement bookkeeping after an instance leaves the pool."""

    def _ingress_for(self, pool, record):
        """Front-end node an arrival enters through (None = single host)."""
        return None

    def _candidate_for(self, pool, request):
        """First instance with spare concurrency for ``request``."""
        target = pool.scaling.target_concurrency
        for instance in pool.instances:
            if instance.ready and instance.busy < target \
                    and not instance.doomed:
                return instance
        return None

    def _hop_penalty(self, pool, instance, request) -> int:
        """Extra service ticks when serving off the ingress node."""
        return 0

    def _remove_idle(self, pool, count: int, floor: int) -> int:
        """Remove up to ``count`` idle instances, oldest-idle first."""
        removed = 0
        idle = sorted(
            (inst for inst in pool.instances
             if inst.busy == 0 and inst.state == FunctionState.WAITING),
            key=lambda inst: (inst.last_used, inst.index))
        for victim in idle:
            if removed >= count or len(pool.instances) <= floor:
                break
            self._remove_instance(pool, victim)
            removed += 1
        return removed

    def _remove_instance(self, pool, instance) -> None:
        """Reclaim one instance through the engine (stop/remove guarded
        separately — a stop failure must never leak the container)."""
        if instance.container_name is not None:
            engine = instance.host_engine or self.engine
            try:
                engine.stop(instance.container_name)
            except EngineError:
                pass
            try:
                engine.remove(instance.container_name)
            except EngineError:
                pass
            instance.container_name = None
        instance.state = FunctionState.DEAD
        if instance in pool.instances:
            pool.instances.remove(instance)
        self._note_remove(pool, instance)

    def _dispatch(self, pool, heap, order, result) -> None:
        """Drain the queue onto every instance with spare concurrency."""
        target = pool.scaling.target_concurrency
        while pool.queue:
            candidate = self._candidate_for(pool, pool.queue[0])
            if candidate is None:
                return
            request = pool.queue.popleft()
            record = request.record
            record.cold = candidate.cold_pending
            candidate.cold_pending = False
            candidate.busy += 1
            candidate.state = FunctionState.RUNNING
            candidate.inflight.append(record)
            assert candidate.busy <= target, \
                "instance concurrency bound violated"
            queue_ticks = self.now - request.arrival
            service_ticks = self._execute(pool, candidate, request)
            service_ticks += self._hop_penalty(pool, candidate, request)
            record.meter("timing.queue_ticks", queue_ticks)
            record.meter("timing.service_ticks", service_ticks)
            record.meter("timing.sojourn_ticks", queue_ticks + service_ticks)
            heapq.heappush(heap, (self.now + service_ticks, next(order),
                                  "depart", (candidate, record)))
            self._trace_span(
                "serve:%s#%d" % (pool.name, record.sequence),
                request.arrival, queue_ticks + service_ticks,
                {"cold": record.cold, "ok": record.ok,
                 "queue_ticks": queue_ticks, "instance": candidate.index})

    def _execute(self, pool, instance, request) -> int:
        """Run the handler functionally; returns the service ticks.

        Functional execution (results, receipts, RPC wire bytes, error
        surfaces) is real; timing is the deterministic service model
        plus any injected RPC latency.
        """
        record = request.record
        service_ticks = self._service_ticks(pool, record)
        drain_service_meters(pool.services)
        context = InvocationContext(record, pool.services, instance.local)
        instance._pending_context = context
        faults = self.faults
        channel = instance.channel
        if channel.faults is None and faults is not None:
            channel.faults = faults
        if faults is not None and faults.should_fire("faas.handler"):
            record.error = "InjectedFault: injected fault at faas.handler"
            record.result = {"error": record.error}
            record.meter("faults.faas.handler")
            instance.doomed = True
        else:
            latency_before = channel.latency_ticks
            try:
                response = channel.call("invoke", request.payload)
            except Exception as failure:  # noqa: BLE001 - FaaS error surface
                record.error = "%s: %s" % (type(failure).__name__, failure)
                record.result = {"error": record.error}
                instance.doomed = True
                response = None
            if response is not None:
                service_ticks += channel.latency_ticks - latency_before
                if response.ok:
                    record.result = response.payload
                else:
                    message = response.payload.get("error", response.status) \
                        if isinstance(response.payload, dict) \
                        else response.status
                    record.error = "%s: %s" % (response.status, message)
                    record.result = response.payload
                    if response.status == "INTERNAL":
                        instance.doomed = True
                record.response_bytes = response.wire_bytes
        harvest_service_meters(record, pool.services)
        instance._pending_context = None
        return max(1, service_ticks)

    def _service_ticks(self, pool, record) -> int:
        """Deterministic service-time draw for one request."""
        base = SERVICE_BASE_TICKS.get(pool.runtime, DEFAULT_SERVICE_TICKS)
        base += record.request_bytes // 64
        if record.cold:
            # First-request residue beyond the boot: imports, JIT warmup.
            base += pool.scaling.cold_start_ticks // 2
        return base + pool.rng.randrange(base // 2 + 1)

    # -- bookkeeping -------------------------------------------------------

    def _observe(self, pool, result) -> None:
        pool.autoscaler.observe(self.now, pool.in_flight)
        self._sample(pool, result)

    def _sample(self, pool, result) -> None:
        sample = (self.now, len(pool.queue), pool.in_flight,
                  len(pool.instances))
        if result.samples and result.samples[-1] == sample:
            return
        result.samples.append(sample)
        tracer = self.tracer
        if tracer is not None:
            tracer.counter("serve.%s" % pool.name, self.now,
                           {"queue": sample[1], "in_flight": sample[2],
                            "instances": sample[3]}, TRACK_SCALING)

    def _emit(self, result, pool, kind: str, from_instances: int,
              to_instances: int, reason: str) -> None:
        event = ScalingEvent(self.now, pool.name, kind, from_instances,
                             to_instances, reason)
        result.events.append(event)
        self._trace_instant(kind, {"function": pool.name,
                                   "from": from_instances,
                                   "to": to_instances, "reason": reason})

    def _schedule_eval(self, pool, heap, order) -> None:
        """Keep evaluations coming while there is anything to decide."""
        busy = pool.in_flight > 0 or any(
            not inst.ready for inst in pool.instances)
        if busy:
            tick = self.now + pool.scaling.evaluate_every
        elif len(pool.instances) > pool.scaling.min_instances:
            # Idle drain: next decision is the idle-timeout reap (or an
            # earlier stable-window scale-down).
            tick = self.now + pool.scaling.evaluate_every
        else:
            return
        if tick in pool.scheduled_evals:
            return
        pool.scheduled_evals.add(tick)
        heapq.heappush(heap, (tick, next(order), "eval", pool.name))

    # -- tracing (never advances the tracer clock) -------------------------

    def _trace_span(self, name: str, start: int, dur: int,
                    args: Dict[str, Any]) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(name, "serving", start, max(1, dur),
                            TRACK_SCALING, args=args)

    def _trace_instant(self, name: str, args: Dict[str, Any]) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(name, "scaling", self.now, TRACK_SCALING,
                           args=args)

    def __repr__(self) -> str:
        return "Router(%d pools, now=%d)" % (len(self._pools), self.now)
