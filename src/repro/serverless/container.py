"""Container images, layers, and the image registry.

Images are stacks of layers with compressed sizes; the registry models
Docker Hub's per-architecture availability — the constraint that shaped
the whole porting effort: Go/NodeJS base images for riscv64 were easy to
find, Python needed a Jammy-based image with gRPC preloading, and Alpine
variants simply do not exist for riscv64 (§3.3.1, §3.5.1).

Container sizes feed Tables 4.4 and 4.5 directly: an image's compressed
size is the sum of its layers, and the application layer's size is derived
from the workload's per-ISA code footprint, so Go binaries are small and
the RISC-V Python runtime is bigger than the x86 one exactly as measured.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

MB = 1024 * 1024

ARCHES = ("x86", "riscv", "arm")


class ImageLayer:
    """One compressed image layer."""

    __slots__ = ("name", "size_bytes")

    def __init__(self, name: str, size_bytes: int):
        if size_bytes < 0:
            raise ValueError("layer size cannot be negative")
        self.name = name
        self.size_bytes = size_bytes

    @property
    def size_mb(self) -> float:
        return self.size_bytes / MB

    def __repr__(self) -> str:
        return "ImageLayer(%s, %.2fMB)" % (self.name, self.size_mb)


class ContainerImage:
    """A named, architecture-specific image: base + runtime + app layers."""

    def __init__(self, name: str, arch: str, layers: Iterable[ImageLayer],
                 runtime: str = "native", publisher: str = "local"):
        if arch not in ARCHES:
            raise ValueError("unsupported arch %r (have %s)" % (arch, ARCHES))
        self.name = name
        self.arch = arch
        self.layers = list(layers)
        self.runtime = runtime
        self.publisher = publisher

    @property
    def compressed_size_bytes(self) -> int:
        return sum(layer.size_bytes for layer in self.layers)

    @property
    def compressed_size_mb(self) -> float:
        return self.compressed_size_bytes / MB

    def with_layer(self, layer: ImageLayer) -> "ContainerImage":
        """A new image with one more layer (docker build step analog)."""
        return ContainerImage(
            self.name, self.arch, self.layers + [layer], self.runtime, self.publisher
        )

    def __repr__(self) -> str:
        return "ContainerImage(%s/%s, %.2fMB, %d layers)" % (
            self.name, self.arch, self.compressed_size_mb, len(self.layers),
        )


#: Base-image catalog: (runtime, arch, variant) -> compressed MB of the
#: base+runtime layers.  Values are calibrated against the thesis's
#: measured container sizes (Table 4.4) after subtracting the app layer.
#: ``None`` marks images that do not exist on Docker Hub for that arch —
#: notably every Alpine variant for riscv64.
BASE_IMAGE_CATALOG: Dict[Tuple[str, str, str], Optional[float]] = {
    # Go: static binaries over scratch/ubuntu-slim bases.
    ("go", "x86", "default"): 7.3, ("go", "riscv", "default"): 6.9,
    ("go", "arm", "default"): 7.0,
    ("go", "x86", "alpine"): 5.0, ("go", "riscv", "alpine"): None,
    ("go", "arm", "alpine"): 4.9,
    # Python: Jammy-based; the thesis's riscv build bakes in the preloaded
    # libatomic workaround and a from-source gRPC, hence the bigger base.
    ("python", "x86", "default"): 96.2, ("python", "riscv", "default"): 129.4,
    ("python", "x86", "grpc-prebuilt"): 104.5, ("python", "riscv", "grpc-prebuilt"): 111.2,
    ("python", "arm", "default"): 93.5,
    ("python", "arm", "grpc-prebuilt"): 101.8,
    ("python", "x86", "alpine"): 52.0, ("python", "riscv", "alpine"): None,
    ("python", "arm", "alpine"): 50.5,
    # NodeJS.
    ("nodejs", "x86", "default"): 55.6, ("nodejs", "riscv", "default"): 33.7,
    ("nodejs", "arm", "default"): 52.1,
    ("nodejs", "x86", "alpine"): 42.0, ("nodejs", "riscv", "alpine"): None,
    ("nodejs", "arm", "alpine"): 40.2,
}


def base_image(runtime: str, arch: str, variant: str = "default") -> ContainerImage:
    """Look up a base image, enforcing per-arch availability."""
    key = (runtime, arch, variant)
    if key not in BASE_IMAGE_CATALOG:
        raise KeyError("no base image for runtime=%r arch=%r variant=%r" % key)
    size_mb = BASE_IMAGE_CATALOG[key]
    if size_mb is None:
        raise LookupError(
            "Docker Hub has no %s %s image for %s (the thesis hit exactly "
            "this: no Alpine candidates for riscv64, §3.5.1)" % (variant, runtime, arch)
        )
    return ContainerImage(
        name="%s-%s" % (runtime, variant),
        arch=arch,
        layers=[
            ImageLayer("os-base", int(size_mb * 0.35 * MB)),
            ImageLayer("%s-runtime" % runtime, int(size_mb * 0.65 * MB)),
        ],
        runtime=runtime,
        publisher="dockerhub",
    )


class ImageRegistry:
    """A Docker-Hub-like registry keyed by (name, arch)."""

    def __init__(self):
        self._images: Dict[Tuple[str, str], ContainerImage] = {}

    def push(self, image: ContainerImage) -> None:
        self._images[(image.name, image.arch)] = image

    def pull(self, name: str, arch: str) -> ContainerImage:
        try:
            return self._images[(name, arch)]
        except KeyError:
            raise LookupError("registry has no image %r for arch %r" % (name, arch)) from None

    def search(self, query: str, arch: Optional[str] = None) -> List[ContainerImage]:
        """Substring search with an optional architecture filter, like the
        Docker Hub search the thesis used to find riscv64 Go images."""
        found = [
            image
            for (name, image_arch), image in sorted(self._images.items())
            if query in name and (arch is None or image_arch == arch)
        ]
        return found

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._images

    def __len__(self) -> int:
        return len(self._images)
