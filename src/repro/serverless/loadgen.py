"""Load generation: the client side of the experiment (core 0 in Fig 4.3).

The thesis's protocol (Fig 4.1) sends ten requests per function: the
first hits a dead instance (cold), requests 2–9 warm it, and the tenth is
the warm measurement.  :class:`LoadGenerator` drives that sequence and
keeps a :class:`RequestLog` of invocation records.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.serverless.faas import FaasPlatform, InvocationRecord


class RequestLog:
    """Ordered record of invocations with cold/warm accessors."""

    def __init__(self):
        self.records: List[InvocationRecord] = []

    def append(self, record: InvocationRecord) -> None:
        self.records.append(record)

    @property
    def cold(self) -> InvocationRecord:
        for record in self.records:
            if record.cold:
                return record
        raise LookupError("no cold invocation in this log")

    @property
    def warm(self) -> InvocationRecord:
        warm_records = [record for record in self.records if not record.cold]
        if not warm_records:
            raise LookupError("no warm invocation in this log")
        return warm_records[-1]

    @property
    def cold_count(self) -> int:
        return sum(1 for record in self.records if record.cold)

    @property
    def cold_rate(self) -> float:
        return self.cold_count / len(self.records) if self.records else 0.0

    @property
    def error_count(self) -> int:
        return sum(1 for record in self.records if not record.ok)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:
        return "RequestLog(%d records, %d cold)" % (
            len(self.records), self.cold_count,
        )


class LoadGenerator:
    """Relay client issuing the 10-request protocol against one function."""

    def __init__(self, platform: FaasPlatform, client_core: int = 0):
        self.platform = platform
        self.client_core = client_core

    def run_session(
        self,
        function: str,
        requests: int = 10,
        payload: Optional[Dict[str, Any]] = None,
        payload_factory: Optional[Callable[[int], Dict[str, Any]]] = None,
        raise_errors: bool = True,
    ) -> RequestLog:
        """Issue ``requests`` back-to-back invocations (cold first).

        ``raise_errors=False`` turns handler crashes into error records
        (``log.error_count``) instead of aborting the session — the mode
        chaos experiments use.
        """
        if requests < 1:
            raise ValueError("need at least one request")
        if payload is not None and payload_factory is not None:
            raise ValueError("pass payload or payload_factory, not both")
        log = RequestLog()
        for sequence in range(requests):
            body = payload_factory(sequence) if payload_factory else (payload or {})
            log.append(self.platform.invoke(function, body,
                                            raise_errors=raise_errors))
        return log

    def open_loop_session(
        self,
        function: str,
        requests: int,
        mean_interarrival: float,
        payload: Optional[Dict[str, Any]] = None,
        seed: int = 0,
    ) -> RequestLog:
        """Poisson arrivals: the production traffic shape (§2.1).

        Inter-arrival gaps draw from an exponential distribution and
        advance the platform's logical clock, so sparse traffic lets the
        keep-alive policy reap the instance between requests — the
        mechanism behind real-world cold-start rates (the Azure-trace
        observation the related work measures).
        """
        if requests < 1:
            raise ValueError("need at least one request")
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        import random

        rng = random.Random(seed)
        log = RequestLog()
        for _ in range(requests):
            gap = rng.expovariate(1.0 / mean_interarrival)
            log.append(self.platform.invoke(function, payload or {},
                                            advance_clock=gap))
        return log

    def interleaved_session(
        self,
        functions: List[str],
        rounds: int = 4,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, RequestLog]:
        """Round-robin over several functions — the lukewarm scenario.

        Interleaving means each function's requests are separated by other
        functions' executions, which on the simulator thrashes the shared
        microarchitectural state (§2.1's lukewarm effect).
        """
        logs = {function: RequestLog() for function in functions}
        for _round in range(rounds):
            for function in functions:
                logs[function].append(self.platform.invoke(function, payload or {}))
        return logs
