"""Load generation: the client side of the experiment (core 0 in Fig 4.3).

The thesis's protocol (Fig 4.1) sends ten requests per function: the
first hits a dead instance (cold), requests 2–9 warm it, and the tenth is
the warm measurement.  :class:`LoadGenerator` drives that sequence and
keeps a :class:`RequestLog` of invocation records.

For the serving layer (:mod:`repro.serverless.router`) this module also
generates **trace-driven open-loop arrivals**: :func:`arrival_ticks`
turns a profile name (``poisson`` / ``burst`` / ``diurnal``), a request
rate and the run's seed into a deterministic list of integer arrival
ticks via Poisson thinning — no wall clock anywhere, so the same seed
always yields byte-identical traffic.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Dict, List, Optional

from repro.serverless.faas import FaasPlatform, InvocationRecord

#: The logical-tick resolution arrival traces are generated at: ``--rps``
#: on the CLI means requests per 1000 ticks.
TICKS_PER_SECOND = 1000

#: Burst (on/off square wave) profile shape: each period opens with a
#: concentrated on-window carrying the whole period's traffic.
BURST_PERIOD_TICKS = 2000
BURST_ON_TICKS = 400

#: Diurnal profile: one compressed "day" of sinusoidal rate modulation.
DIURNAL_PERIOD_TICKS = 20000
DIURNAL_SWING = 0.9

#: Valid ``profile`` arguments for :func:`arrival_ticks` (and the CLI).
ARRIVAL_PROFILES = ("poisson", "burst", "diurnal")


def arrival_ticks(profile: str = "poisson", rps: float = 50.0,
                  requests: int = 100, seed: int = 0) -> List[int]:
    """A deterministic open-loop arrival trace, as integer ticks.

    ``profile`` selects the rate function λ(t):

    * ``poisson`` — constant λ; the memoryless baseline.
    * ``burst`` — on/off square wave: each :data:`BURST_PERIOD_TICKS`
      window concentrates all its traffic in the opening
      :data:`BURST_ON_TICKS`, so the instantaneous on-rate is
      ``period/on`` × the mean rate — the shape that drives panic-mode
      scale-ups and cold-start storms.
    * ``diurnal`` — sinusoidal modulation over a compressed "day"
      (:data:`DIURNAL_PERIOD_TICKS`), the slow swell real traffic shows.

    Arrivals are drawn by thinning a homogeneous Poisson process at the
    profile's peak rate, so every draw comes from one seeded
    ``random.Random`` — same seed, same trace, byte for byte.  The mean
    rate of every profile is ``rps`` requests per
    :data:`TICKS_PER_SECOND` ticks.
    """
    if requests < 1:
        raise ValueError("need at least one request")
    if rps <= 0:
        raise ValueError("rps must be positive")
    base = rps / float(TICKS_PER_SECOND)
    if profile == "poisson":
        peak = base

        def rate(_tick: float) -> float:
            return base
    elif profile == "burst":
        boost = BURST_PERIOD_TICKS / float(BURST_ON_TICKS)
        peak = base * boost

        def rate(tick: float) -> float:
            return peak if tick % BURST_PERIOD_TICKS < BURST_ON_TICKS else 0.0
    elif profile == "diurnal":
        peak = base * (1.0 + DIURNAL_SWING)

        def rate(tick: float) -> float:
            phase = 2.0 * math.pi * tick / DIURNAL_PERIOD_TICKS
            return base * (1.0 + DIURNAL_SWING * math.sin(phase))
    else:
        raise ValueError("unknown arrival profile %r (choose from %s)"
                         % (profile, ", ".join(ARRIVAL_PROFILES)))
    rng = random.Random((seed * 0x9E3779B1) ^ 0x5EED)
    ticks: List[int] = []
    clock = 0.0
    while len(ticks) < requests:
        clock += rng.expovariate(peak)
        if rng.random() * peak <= rate(clock):
            ticks.append(int(clock))
    return ticks


class RequestLog:
    """Ordered record of invocations with cold/warm accessors."""

    def __init__(self):
        self.records: List[InvocationRecord] = []

    def append(self, record: InvocationRecord) -> None:
        self.records.append(record)

    @property
    def cold(self) -> InvocationRecord:
        for record in self.records:
            if record.cold:
                return record
        raise LookupError("no cold invocation in this log")

    @property
    def warm(self) -> InvocationRecord:
        warm_records = [record for record in self.records if not record.cold]
        if not warm_records:
            raise LookupError("no warm invocation in this log")
        return warm_records[-1]

    @property
    def cold_count(self) -> int:
        return sum(1 for record in self.records if record.cold)

    @property
    def cold_rate(self) -> float:
        return self.cold_count / len(self.records) if self.records else 0.0

    @property
    def error_count(self) -> int:
        return sum(1 for record in self.records if not record.ok)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:
        return "RequestLog(%d records, %d cold)" % (
            len(self.records), self.cold_count,
        )


class LoadGenerator:
    """Relay client issuing the 10-request protocol against one function."""

    def __init__(self, platform: FaasPlatform, client_core: int = 0):
        self.platform = platform
        self.client_core = client_core

    def run_session(
        self,
        function: str,
        requests: int = 10,
        payload: Optional[Dict[str, Any]] = None,
        payload_factory: Optional[Callable[[int], Dict[str, Any]]] = None,
        raise_errors: bool = True,
    ) -> RequestLog:
        """Issue ``requests`` back-to-back invocations (cold first).

        ``raise_errors=False`` turns handler crashes into error records
        (``log.error_count``) instead of aborting the session — the mode
        chaos experiments use.
        """
        if requests < 1:
            raise ValueError("need at least one request")
        if payload is not None and payload_factory is not None:
            raise ValueError("pass payload or payload_factory, not both")
        log = RequestLog()
        for sequence in range(requests):
            body = payload_factory(sequence) if payload_factory else (payload or {})
            log.append(self.platform.invoke(function, body,
                                            raise_errors=raise_errors))
        return log

    def open_loop_session(
        self,
        function: str,
        requests: int,
        mean_interarrival: float,
        payload: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        service_ticks: float = 0.0,
    ) -> RequestLog:
        """Poisson arrivals: the production traffic shape (§2.1).

        Inter-arrival gaps draw from an exponential distribution and
        advance the platform's logical clock, so sparse traffic lets the
        keep-alive policy reap the instance between requests — the
        mechanism behind real-world cold-start rates (the Azure-trace
        observation the related work measures).

        Open-loop means arrivals do not wait for the previous request:
        when a gap is shorter than the single instance's ``service_ticks``
        the new request *queues*, and the wait it accrues is reported
        separately from service time — ``timing.queue_ticks``,
        ``timing.service_ticks`` and ``timing.sojourn_ticks`` meters on
        each :class:`~repro.serverless.faas.InvocationRecord` — so
        sojourn-time percentiles can be computed without conflating the
        two (they used to be folded together).  The default
        ``service_ticks=0`` models an infinitely fast server: no queueing,
        the historical behaviour, byte for byte.
        """
        if requests < 1:
            raise ValueError("need at least one request")
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if service_ticks < 0:
            raise ValueError("service_ticks must be >= 0")
        rng = random.Random(seed)
        log = RequestLog()
        arrival = 0.0
        free_at = 0.0
        for _ in range(requests):
            gap = rng.expovariate(1.0 / mean_interarrival)
            arrival += gap
            start = arrival if arrival > free_at else free_at
            queue_delay = start - arrival
            free_at = start + service_ticks
            record = self.platform.invoke(function, payload or {},
                                          advance_clock=gap)
            record.meter("timing.queue_ticks", queue_delay)
            record.meter("timing.service_ticks", service_ticks)
            record.meter("timing.sojourn_ticks", queue_delay + service_ticks)
            log.append(record)
        return log

    def interleaved_session(
        self,
        functions: List[str],
        rounds: int = 4,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, RequestLog]:
        """Round-robin over several functions — the lukewarm scenario.

        Interleaving means each function's requests are separated by other
        functions' executions, which on the simulator thrashes the shared
        microarchitectural state (§2.1's lukewarm effect).
        """
        logs = {function: RequestLog() for function in functions}
        for _round in range(rounds):
            for function in functions:
                logs[function].append(self.platform.invoke(function, payload or {}))
        return logs
