"""Platform metrics: what an operator dashboard would show.

Aggregates invocation records and end-to-end samples into the metrics
serverless operators actually watch — cold-start rates per function,
latency percentiles, error rates — rendered as a compact report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

# One shared percentile for the whole tree: the serving layer used to
# carry its own copy, which could drift from the sim-statistics side.
# Re-exported here because this is where serving callers import it from.
from repro.sim.statistics import percentile

__all__ = ["percentile", "FunctionMetrics", "MetricsCollector",
           "render_serving"]


class FunctionMetrics:
    """Aggregate view over one function's invocation records."""

    def __init__(self, function: str):
        self.function = function
        self.invocations = 0
        self.cold_starts = 0
        self.errors = 0
        self.latencies: List[float] = []
        #: Resilience counters harvested from ``record.metrics`` —
        #: ``retries.*``, ``faults.*`` and ``resilience.*`` keys the
        #: platform meters when a fault plan is armed.  Empty (and free)
        #: on fault-less runs.
        self.retries = 0.0
        self.faults_injected = 0.0
        self.timeouts = 0.0
        self.fallbacks = 0.0
        self.breaker_trips = 0.0
        #: Serving-layer timing harvested from ``timing.*`` meter keys
        #: (stamped by the router and by open-loop sessions): queueing
        #: delay and total sojourn per admitted request, plus the count
        #: of requests shed by admission control (``serve.rejected``).
        self.queue_ticks: List[float] = []
        self.sojourn_ticks: List[float] = []
        self.rejections = 0.0
        #: Cluster placement harvested from ``serve.*`` meter keys the
        #: multi-node platform stamps: node index -> requests served
        #: there, plus how many requests crossed a node boundary and
        #: the hop ticks they paid.  Empty on single-host runs.
        self.node_invocations: Dict[int, int] = {}
        self.cross_node = 0.0
        self.hop_ticks = 0.0

    def observe(self, record, latency: Optional[float] = None) -> None:
        self.invocations += 1
        self.cold_starts += bool(record.cold)
        self.errors += not record.ok
        if latency is not None:
            self.latencies.append(latency)
        for key, amount in getattr(record, "metrics", {}).items():
            if key in ("retries.handler", "retries.cold_start"):
                self.retries += amount
            elif key == "timing.queue_ticks":
                self.queue_ticks.append(amount)
            elif key == "timing.sojourn_ticks":
                self.sojourn_ticks.append(amount)
            elif key == "serve.rejected":
                self.rejections += amount
            elif key == "serve.node":
                node = int(amount)
                self.node_invocations[node] = \
                    self.node_invocations.get(node, 0) + 1
            elif key == "serve.cross_node":
                self.cross_node += amount
            elif key == "serve.hop_ticks":
                self.hop_ticks += amount
            elif key.startswith("faults."):
                self.faults_injected += amount
            elif key.startswith("resilience."):
                leaf = key.rsplit(".", 1)[-1]
                if leaf == "timeouts":
                    self.timeouts += amount
                elif leaf == "fallbacks":
                    self.fallbacks += amount
                elif leaf == "breaker_trips":
                    self.breaker_trips += amount

    @property
    def cold_rate(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.invocations if self.invocations else 0.0

    @property
    def retry_rate(self) -> float:
        """Retries per invocation (handler plus cold-start retries)."""
        return self.retries / self.invocations if self.invocations else 0.0

    @property
    def timeout_rate(self) -> float:
        """Injected datastore timeouts per invocation."""
        return self.timeouts / self.invocations if self.invocations else 0.0

    def latency_percentile(self, fraction: float) -> float:
        return percentile(self.latencies, fraction)

    @property
    def rejection_rate(self) -> float:
        """Requests shed by admission control, per observed record."""
        return self.rejections / self.invocations if self.invocations else 0.0

    @property
    def mean_queue_delay(self) -> float:
        """Mean queueing ticks over admitted requests (0 when unqueued)."""
        if not self.queue_ticks:
            return 0.0
        return sum(self.queue_ticks) / len(self.queue_ticks)

    def sojourn_percentile(self, fraction: float) -> float:
        """Queue + service tick percentile (router/open-loop sessions)."""
        return percentile(self.sojourn_ticks, fraction)

    def __repr__(self) -> str:
        return "FunctionMetrics(%s: %d invocations, %.0f%% cold)" % (
            self.function, self.invocations, self.cold_rate * 100,
        )


class MetricsCollector:
    """Collects records across functions and renders the dashboard."""

    def __init__(self):
        self._functions: Dict[str, FunctionMetrics] = {}

    def observe(self, record, latency: Optional[float] = None) -> None:
        metrics = self._functions.setdefault(record.function,
                                             FunctionMetrics(record.function))
        metrics.observe(record, latency)

    def observe_all(self, records: Iterable, latencies: Optional[Sequence[float]] = None) -> None:
        records = list(records)
        if latencies is not None and len(latencies) != len(records):
            raise ValueError("latencies must align with records")
        for index, record in enumerate(records):
            self.observe(record,
                         latencies[index] if latencies is not None else None)

    def function(self, name: str) -> FunctionMetrics:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError("no metrics for %r" % name) from None

    def functions(self) -> List[str]:
        return sorted(self._functions)

    @property
    def total_invocations(self) -> int:
        return sum(metrics.invocations for metrics in self._functions.values())

    def render(self) -> str:
        lines = ["%-30s %8s %7s %7s %10s %10s" % (
            "function", "invokes", "cold%", "err%", "p50", "p99")]
        for name in self.functions():
            metrics = self._functions[name]
            if metrics.latencies:
                p50 = "%.0f" % metrics.latency_percentile(0.50)
                p99 = "%.0f" % metrics.latency_percentile(0.99)
            else:
                p50 = p99 = "-"
            lines.append("%-30s %8d %6.1f%% %6.1f%% %10s %10s" % (
                name, metrics.invocations, metrics.cold_rate * 100,
                metrics.error_rate * 100, p50, p99))
        return "\n".join(lines)

    def render_serving(self) -> str:
        """The serving dashboard: queueing, shedding, sojourn tails.

        Complements :meth:`render` for records produced by the
        multi-instance router (or queue-aware open-loop sessions), where
        the interesting numbers are queue delay and sojourn percentiles
        rather than raw invocation latency.
        """
        lines = ["%-30s %8s %7s %7s %9s %9s %9s %9s" % (
            "function", "invokes", "cold%", "rej", "qdelay",
            "p50", "p95", "p99")]
        for name in self.functions():
            metrics = self._functions[name]
            if metrics.sojourn_ticks:
                p50 = "%.0f" % metrics.sojourn_percentile(0.50)
                p95 = "%.0f" % metrics.sojourn_percentile(0.95)
                p99 = "%.0f" % metrics.sojourn_percentile(0.99)
            else:
                p50 = p95 = p99 = "-"
            lines.append("%-30s %8d %6.1f%% %7.0f %9.1f %9s %9s %9s" % (
                name, metrics.invocations, metrics.cold_rate * 100,
                metrics.rejections, metrics.mean_queue_delay,
                p50, p95, p99))
        # Per-node breakdown: only for records a multi-node cluster
        # platform attributed (``serve.node``), so single-host output
        # stays byte-identical to the pre-cluster rendering.
        for name in self.functions():
            metrics = self._functions[name]
            if not metrics.node_invocations:
                continue
            placed = " ".join(
                "n%d=%d" % (node, metrics.node_invocations[node])
                for node in sorted(metrics.node_invocations))
            lines.append(
                "%-30s placed %s; %.0f cross-node (%.0f hop ticks)" % (
                    name, placed, metrics.cross_node, metrics.hop_ticks))
        return "\n".join(lines)

    def render_resilience(self, breaker_states: Optional[Dict[str, str]] = None) -> str:
        """The chaos dashboard: injected faults, retries, degradation.

        ``breaker_states`` maps service name → breaker state (as read
        from :attr:`~repro.faults.ResilientCache.breaker_state`) for the
        trailing status line.
        """
        lines = ["%-30s %8s %8s %9s %9s %7s" % (
            "function", "faults", "retries", "timeouts", "fallback", "trips")]
        for name in self.functions():
            metrics = self._functions[name]
            lines.append("%-30s %8.0f %8.0f %9.0f %9.0f %7.0f" % (
                name, metrics.faults_injected, metrics.retries,
                metrics.timeouts, metrics.fallbacks, metrics.breaker_trips))
        if breaker_states:
            lines.append("breakers: " + ", ".join(
                "%s=%s" % (service, state)
                for service, state in sorted(breaker_states.items())))
        return "\n".join(lines)
