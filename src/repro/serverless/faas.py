"""Function-as-a-Service lifecycle: dead / waiting / running (§2.1).

A deployed function's instance moves between the three states the thesis
describes: *dead* (no container, no memory — the next invocation is a
**cold** execution paying the full initialisation path), *waiting*
(container resident — the next invocation is **warm**), and *running*.
A keep-alive policy decides when waiting instances are reaped, exactly
the provider-side trade-off §2.1 discusses.

Invocations return an :class:`InvocationRecord` carrying everything the
workload trace builders need: whether the run was cold, the request and
response wire sizes, and the metered :class:`~repro.db.engine.WorkReceipt`
of every backing service the handler touched.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.db.engine import WorkReceipt, encoded_size
from repro.faults.policy import RetryBudgetExceeded
from repro.obs.tracer import TRACK_FAULTS, TRACK_INVOCATION
from repro.serverless.engine import ContainerEngine, EngineError


class FunctionState:
    """The three lifecycle states of §2.1."""

    DEAD = "dead"
    WAITING = "waiting"
    RUNNING = "running"


class InvocationRecord:
    """Everything observed about one function invocation."""

    def __init__(self, function: str, runtime: str, cold: bool,
                 request_bytes: int, sequence: int):
        self.function = function
        self.runtime = runtime
        self.cold = cold
        self.sequence = sequence
        self.request_bytes = request_bytes
        self.response_bytes = 0
        self.result: Any = None
        self.receipts: Dict[str, WorkReceipt] = {}
        self.metrics: Dict[str, float] = {}
        #: Invocation records of downstream functions this handler called
        #: (chained / multi-function benchmarks).
        self.children: List["InvocationRecord"] = []
        #: Set when the handler raised: the platform returns an error
        #: response instead of crashing (real FaaS returns a 500).
        self.error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def attach_receipt(self, service: str, receipt: WorkReceipt) -> None:
        existing = self.receipts.get(service)
        if existing is None:
            self.receipts[service] = receipt
        else:
            existing.merge(receipt)

    def meter(self, key: str, amount: float = 1) -> None:
        self.metrics[key] = self.metrics.get(key, 0) + amount

    def total_receipt(self) -> WorkReceipt:
        combined = WorkReceipt()
        for receipt in self.receipts.values():
            combined.merge(receipt)
        return combined

    def as_dict(self) -> Dict[str, Any]:
        """Round-trippable view (see :meth:`from_dict`); used by the
        result cache and the JSON exporters."""
        return {
            "function": self.function,
            "runtime": self.runtime,
            "cold": self.cold,
            "sequence": self.sequence,
            "request_bytes": self.request_bytes,
            "response_bytes": self.response_bytes,
            "result": self.result,
            "receipts": {name: receipt.as_dict()
                         for name, receipt in self.receipts.items()},
            "metrics": dict(self.metrics),
            "children": [child.as_dict() for child in self.children],
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "InvocationRecord":
        record = cls(
            function=data["function"],
            runtime=data["runtime"],
            cold=data["cold"],
            request_bytes=data["request_bytes"],
            sequence=data["sequence"],
        )
        record.response_bytes = data.get("response_bytes", 0)
        record.result = data.get("result")
        record.receipts = {
            name: WorkReceipt.from_dict(receipt)
            for name, receipt in data.get("receipts", {}).items()
        }
        record.metrics = dict(data.get("metrics", {}))
        record.children = [cls.from_dict(child)
                           for child in data.get("children", [])]
        record.error = data.get("error")
        return record

    def __repr__(self) -> str:
        return "InvocationRecord(%s #%d, %s)" % (
            self.function, self.sequence, "cold" if self.cold else "warm",
        )


class InvocationContext:
    """Passed to handlers so they can meter their work.

    ``local`` is the instance's in-process state: it survives warm
    invocations and is wiped on cold starts, exactly like module-level
    globals in a real function container.  Handlers use it for in-process
    caches, whose emptiness is part of what makes cold requests expensive.
    """

    def __init__(self, record: InvocationRecord, services: Dict[str, Any],
                 local: Optional[Dict[str, Any]] = None):
        self.record = record
        self._services = services
        self.local = local if local is not None else {}

    def service(self, name: str):
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(
                "function %r has no bound service %r (have %s)"
                % (self.record.function, name, sorted(self._services))
            ) from None

    def meter(self, key: str, amount: float = 1) -> None:
        self.record.meter(key, amount)


Handler = Callable[[Dict[str, Any], InvocationContext], Any]


def drain_service_meters(services: Dict[str, Any]) -> None:
    """Discard stale service metering so a record sees only its request.

    Shared between :class:`FaasPlatform` and the serving router
    (:mod:`repro.serverless.router`): both must reset every bound
    service's receipt and fault counters immediately before running a
    handler, or metering from a previous invocation leaks into this one.
    """
    for service in services.values():
        if hasattr(service, "take_receipt"):
            service.take_receipt()
        if hasattr(service, "take_fault_metrics"):
            service.take_fault_metrics()


def harvest_service_meters(record: InvocationRecord,
                           services: Dict[str, Any]) -> None:
    """Attach each service's receipt and fault counters to ``record``."""
    for service_name, service in services.items():
        if hasattr(service, "take_receipt"):
            record.attach_receipt(service_name, service.take_receipt())
        if hasattr(service, "take_fault_metrics"):
            for key, amount in service.take_fault_metrics().items():
                record.meter("resilience.%s.%s" % (service_name, key),
                             amount)


class KeepAlivePolicy:
    """Evicts waiting instances: idle timeout plus a warm-pool cap."""

    def __init__(self, idle_timeout: float = 600.0, max_warm: int = 32):
        if idle_timeout <= 0 or max_warm < 0:
            raise ValueError("idle_timeout must be > 0 and max_warm >= 0")
        self.idle_timeout = idle_timeout
        self.max_warm = max_warm

    def victims(self, instances: List["FunctionInstance"], now: float) -> List["FunctionInstance"]:
        waiting = [
            instance for instance in instances
            if instance.state == FunctionState.WAITING
        ]
        victims = [
            instance for instance in waiting
            if now - instance.last_used >= self.idle_timeout
        ]
        survivors = sorted(
            (instance for instance in waiting if instance not in victims),
            key=lambda instance: instance.last_used,
        )
        overflow = len(survivors) - self.max_warm
        if overflow > 0:
            victims.extend(survivors[:overflow])
        return victims


class FunctionInstance:
    """A deployed function and its (possibly absent) container."""

    def __init__(self, name: str, image_name: str, runtime: str,
                 handler: Handler, services: Dict[str, Any]):
        self.name = name
        self.image_name = image_name
        self.runtime = runtime
        self.handler = handler
        self.services = services
        self.state = FunctionState.DEAD
        self.container_name: Optional[str] = None
        self.last_used = 0.0
        self.invocations = 0
        self.cold_starts = 0
        self.local: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return "FunctionInstance(%s, %s)" % (self.name, self.state)


class FaasPlatform:
    """The serverless provider: deploys functions, routes invocations."""

    def __init__(self, engine: ContainerEngine,
                 policy: Optional[KeepAlivePolicy] = None,
                 server_core: int = 1, tracer=None, faults=None,
                 retry_policy=None):
        self.engine = engine
        self.policy = policy or KeepAlivePolicy()
        self.server_core = server_core
        self.clock = 0.0
        self._functions: Dict[str, FunctionInstance] = {}
        #: Optional :class:`repro.obs.Tracer`; invocations then record
        #: the queue → cold-boot → exec → respond lifecycle as spans.
        self.tracer = tracer
        if tracer is not None and engine.tracer is None:
            engine.tracer = tracer
        #: Optional :class:`repro.faults.FaultInjector`; cold starts and
        #: handler execution then consult the ``faas.*`` hook sites, and
        #: recovery is governed by ``retry_policy``.  ``None`` (the
        #: default) keeps every invocation on the exact pre-fault path.
        self.faults = faults
        if faults is not None and engine.faults is None:
            engine.faults = faults
        if retry_policy is None and faults is not None:
            from repro.faults.policy import RetryPolicy

            retry_policy = RetryPolicy.from_plan(faults.plan)
        self.retry_policy = retry_policy

    # -- deployment -------------------------------------------------------------

    def deploy(self, name: str, image_name: str, runtime: str, handler: Handler,
               services: Optional[Dict[str, Any]] = None) -> FunctionInstance:
        if name in self._functions:
            raise ValueError("function %r already deployed" % name)
        self.engine.pull(image_name)
        instance = FunctionInstance(name, image_name, runtime, handler, services or {})
        self._functions[name] = instance
        return instance

    def function(self, name: str) -> FunctionInstance:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError("no function %r deployed (have %s)"
                           % (name, sorted(self._functions))) from None

    def functions(self) -> List[FunctionInstance]:
        return list(self._functions.values())

    # -- invocation --------------------------------------------------------------

    def invoke(self, name: str, payload: Optional[Dict[str, Any]] = None,
               advance_clock: float = 1.0,
               raise_errors: bool = True) -> InvocationRecord:
        """Route one request; cold-starts the instance if it is dead.

        With ``raise_errors=False`` a handler exception becomes an error
        response on the record (``record.error`` set, ``result`` carrying
        the message) instead of propagating — the production-FaaS
        behaviour, where a crashing function returns a 500 and the
        instance is recycled to the dead state.
        """
        instance = self.function(name)
        payload = payload or {}
        # ``advance_clock`` is the logical time since the previous platform
        # activity: it elapses *before* this request arrives, so idle
        # instances can be reaped first and this invocation correctly
        # observes a dead instance after a long gap.
        self.clock += advance_clock
        self._reap()
        tracer = self.tracer
        faults = self.faults
        fired_before = faults.snapshot() if faults is not None else None
        if tracer is not None:
            invoke_start = tracer.now
            tracer.advance(1)  # routing/queueing delay, one logical tick
            tracer.complete("queue", "invocation", invoke_start, 1,
                            TRACK_INVOCATION, args={"function": name})
        cold = instance.state == FunctionState.DEAD
        cold_metrics: Dict[str, float] = {}
        cold_failure: Optional[BaseException] = None
        if cold:
            instance.local = {}  # in-process state dies with the container
            try:
                if tracer is not None:
                    boot_start = tracer.now
                    cold_metrics = self._cold_start(instance)
                    boot_ticks = tracer.now - boot_start
                    tracer.complete("cold-boot", "invocation", boot_start,
                                    boot_ticks if boot_ticks > 0 else 1,
                                    TRACK_INVOCATION,
                                    args={"function": name,
                                          "container": instance.container_name})
                else:
                    cold_metrics = self._cold_start(instance)
            except (EngineError, RetryBudgetExceeded) as failure:
                if raise_errors:
                    raise
                cold_failure = failure
        instance.state = FunctionState.RUNNING
        if tracer is not None:
            exec_start = tracer.now

        record = InvocationRecord(
            function=name,
            runtime=instance.runtime,
            cold=cold,
            request_bytes=encoded_size(payload),
            sequence=instance.invocations + 1,
        )
        for key, amount in cold_metrics.items():
            record.meter(key, amount)
        context = InvocationContext(record, instance.services, instance.local)
        drain_service_meters(instance.services)
        if cold_failure is not None:
            record.error = "%s: %s" % (type(cold_failure).__name__, cold_failure)
            record.result = {"error": record.error}
        else:
            try:
                record.result = self._run_handler(instance, payload, context)
            except Exception as failure:  # noqa: BLE001 - FaaS error surface
                if raise_errors:
                    raise
                record.error = "%s: %s" % (type(failure).__name__, failure)
                record.result = {"error": record.error}
        harvest_service_meters(record, instance.services)
        if fired_before is not None:
            for site, count in faults.snapshot().items():
                delta = count - fired_before.get(site, 0)
                if delta:
                    record.meter("faults.%s" % site, delta)
        record.response_bytes = encoded_size(record.result)
        if tracer is not None:
            # The handler ran functionally; detailed cycle attribution
            # comes from the harness's timing run that follows.  Charge a
            # fixed tick so the lifecycle phases stay visibly ordered.
            tracer.advance(1)
            tracer.complete("exec", "invocation", exec_start,
                            tracer.now - exec_start, TRACK_INVOCATION,
                            args={"sequence": record.sequence,
                                  "cold": cold, "ok": record.ok})
            respond_start = tracer.now
            tracer.advance(1)
            tracer.complete("respond", "invocation", respond_start, 1,
                            TRACK_INVOCATION,
                            args={"bytes": record.response_bytes})

        instance.invocations += 1
        if cold:
            instance.cold_starts += 1
        instance.last_used = self.clock
        if record.ok:
            instance.state = FunctionState.WAITING
        else:
            # A crashed container is recycled, not kept warm.
            self.kill(name)
        self._reap()  # enforce the warm-pool cap immediately
        if tracer is not None:
            total = tracer.now - invoke_start
            tracer.complete("invoke:%s" % name, "invocation", invoke_start,
                            total if total > 0 else 1, TRACK_INVOCATION,
                            args={"cold": cold,
                                  "sequence": record.sequence})
        return record

    def _advance_backoff(self, ticks: int) -> None:
        """Let retry backoff elapse on the platform (and tracer) clock."""
        self.clock += ticks
        tracer = self.tracer
        if tracer is not None:
            start = tracer.now
            tracer.advance(ticks)
            tracer.complete("backoff", "fault", start, ticks, TRACK_FAULTS)

    def _run_handler(self, instance: FunctionInstance,
                     payload: Dict[str, Any],
                     context: InvocationContext) -> Any:
        faults = self.faults
        if faults is None:
            # Zero-overhead disabled path: the exact pre-fault call.
            return instance.handler(payload, context)

        def attempt() -> Any:
            faults.maybe_raise("faas.handler")
            return instance.handler(payload, context)

        if self.retry_policy is None:
            return attempt()
        result, attempts, backoff = self.retry_policy.call(
            attempt, "handler|%s" % instance.name,
            retry_on=(Exception,), advance=self._advance_backoff,
        )
        if attempts > 1:
            context.meter("retries.handler", attempts - 1)
            context.meter("retries.backoff_ticks", backoff)
        return result

    def _boot_container(self, instance: FunctionInstance,
                        container_name: str) -> None:
        """create + start, never leaving a half-made container behind."""
        try:
            self.engine.create(instance.image_name, name=container_name,
                               cpu_pin=self.server_core)
        except EngineError:
            # Image evicted or engine rebuilt: pull again and retry once.
            self.engine.pull(instance.image_name)
            self.engine.create(instance.image_name, name=container_name,
                               cpu_pin=self.server_core)
        try:
            self.engine.start(container_name)
        except EngineError:
            # Created but never started: remove the orphan so the engine's
            # container table stays bounded and the next attempt starts
            # from scratch.
            try:
                self.engine.remove(container_name)
            except EngineError:
                pass
            raise

    def _cold_start(self, instance: FunctionInstance) -> Dict[str, float]:
        """Boot a container; returns cold-start metering for the record.

        On failure (retry budget exhausted, or an unretried engine error)
        the instance is left cleanly dead — no container name, nothing in
        the engine's table — so the next invocation retries from scratch.
        """
        faults = self.faults
        metrics: Dict[str, float] = {}
        if faults is not None and faults.should_fire("faas.cold_start"):
            # Injected provisioning stall: scheduler delay, image-layer
            # fetch hiccup.  Elapses logical time, does not fail the boot.
            stall = faults.ticks_for("faas.cold_start")
            if stall:
                self.clock += stall
                tracer = self.tracer
                if tracer is not None:
                    start = tracer.now
                    tracer.advance(stall)
                    tracer.complete("cold-start-stall", "fault", start,
                                    stall, TRACK_FAULTS,
                                    args={"function": instance.name})
                metrics["faults.stall_ticks"] = stall
        container_name = "%s-run%d" % (instance.name, instance.cold_starts + 1)
        if faults is not None and self.retry_policy is not None:
            try:
                _, attempts, backoff = self.retry_policy.call(
                    lambda: self._boot_container(instance, container_name),
                    "cold-start|%s" % instance.name,
                    retry_on=(EngineError,), advance=self._advance_backoff,
                )
            except RetryBudgetExceeded:
                instance.container_name = None
                instance.state = FunctionState.DEAD
                raise
            if attempts > 1:
                metrics["retries.cold_start"] = attempts - 1
                metrics["retries.backoff_ticks"] = backoff
        else:
            self._boot_container(instance, container_name)
        instance.container_name = container_name
        return metrics

    def _reap(self) -> None:
        for victim in self.policy.victims(list(self._functions.values()), self.clock):
            self.kill(victim.name)

    def kill(self, name: str) -> None:
        """Force an instance to the dead state (provider reclaim).

        Stop and remove are guarded *separately*: a stop failure (already
        stopped, injected fault) must not skip the remove, or the engine's
        container table grows one dead entry per recycle.
        """
        instance = self.function(name)
        if instance.container_name is not None:
            try:
                self.engine.stop(instance.container_name)
            except EngineError:
                pass  # already stopped
            try:
                self.engine.remove(instance.container_name)
            except EngineError:
                pass  # already removed
            instance.container_name = None
        instance.state = FunctionState.DEAD

    def state_of(self, name: str) -> str:
        return self.function(name).state

    def __repr__(self) -> str:
        return "FaasPlatform(%d functions, clock=%.1f)" % (
            len(self._functions), self.clock,
        )
