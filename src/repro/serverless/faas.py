"""Function-as-a-Service lifecycle: dead / waiting / running (§2.1).

A deployed function's instance moves between the three states the thesis
describes: *dead* (no container, no memory — the next invocation is a
**cold** execution paying the full initialisation path), *waiting*
(container resident — the next invocation is **warm**), and *running*.
A keep-alive policy decides when waiting instances are reaped, exactly
the provider-side trade-off §2.1 discusses.

Invocations return an :class:`InvocationRecord` carrying everything the
workload trace builders need: whether the run was cold, the request and
response wire sizes, and the metered :class:`~repro.db.engine.WorkReceipt`
of every backing service the handler touched.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.db.engine import WorkReceipt, encoded_size
from repro.obs.tracer import TRACK_INVOCATION
from repro.serverless.engine import ContainerEngine, EngineError


class FunctionState:
    """The three lifecycle states of §2.1."""

    DEAD = "dead"
    WAITING = "waiting"
    RUNNING = "running"


class InvocationRecord:
    """Everything observed about one function invocation."""

    def __init__(self, function: str, runtime: str, cold: bool,
                 request_bytes: int, sequence: int):
        self.function = function
        self.runtime = runtime
        self.cold = cold
        self.sequence = sequence
        self.request_bytes = request_bytes
        self.response_bytes = 0
        self.result: Any = None
        self.receipts: Dict[str, WorkReceipt] = {}
        self.metrics: Dict[str, float] = {}
        #: Invocation records of downstream functions this handler called
        #: (chained / multi-function benchmarks).
        self.children: List["InvocationRecord"] = []
        #: Set when the handler raised: the platform returns an error
        #: response instead of crashing (real FaaS returns a 500).
        self.error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def attach_receipt(self, service: str, receipt: WorkReceipt) -> None:
        existing = self.receipts.get(service)
        if existing is None:
            self.receipts[service] = receipt
        else:
            existing.merge(receipt)

    def meter(self, key: str, amount: float = 1) -> None:
        self.metrics[key] = self.metrics.get(key, 0) + amount

    def total_receipt(self) -> WorkReceipt:
        combined = WorkReceipt()
        for receipt in self.receipts.values():
            combined.merge(receipt)
        return combined

    def as_dict(self) -> Dict[str, Any]:
        """Round-trippable view (see :meth:`from_dict`); used by the
        result cache and the JSON exporters."""
        return {
            "function": self.function,
            "runtime": self.runtime,
            "cold": self.cold,
            "sequence": self.sequence,
            "request_bytes": self.request_bytes,
            "response_bytes": self.response_bytes,
            "result": self.result,
            "receipts": {name: receipt.as_dict()
                         for name, receipt in self.receipts.items()},
            "metrics": dict(self.metrics),
            "children": [child.as_dict() for child in self.children],
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "InvocationRecord":
        record = cls(
            function=data["function"],
            runtime=data["runtime"],
            cold=data["cold"],
            request_bytes=data["request_bytes"],
            sequence=data["sequence"],
        )
        record.response_bytes = data.get("response_bytes", 0)
        record.result = data.get("result")
        record.receipts = {
            name: WorkReceipt.from_dict(receipt)
            for name, receipt in data.get("receipts", {}).items()
        }
        record.metrics = dict(data.get("metrics", {}))
        record.children = [cls.from_dict(child)
                           for child in data.get("children", [])]
        record.error = data.get("error")
        return record

    def __repr__(self) -> str:
        return "InvocationRecord(%s #%d, %s)" % (
            self.function, self.sequence, "cold" if self.cold else "warm",
        )


class InvocationContext:
    """Passed to handlers so they can meter their work.

    ``local`` is the instance's in-process state: it survives warm
    invocations and is wiped on cold starts, exactly like module-level
    globals in a real function container.  Handlers use it for in-process
    caches, whose emptiness is part of what makes cold requests expensive.
    """

    def __init__(self, record: InvocationRecord, services: Dict[str, Any],
                 local: Optional[Dict[str, Any]] = None):
        self.record = record
        self._services = services
        self.local = local if local is not None else {}

    def service(self, name: str):
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(
                "function %r has no bound service %r (have %s)"
                % (self.record.function, name, sorted(self._services))
            ) from None

    def meter(self, key: str, amount: float = 1) -> None:
        self.record.meter(key, amount)


Handler = Callable[[Dict[str, Any], InvocationContext], Any]


class KeepAlivePolicy:
    """Evicts waiting instances: idle timeout plus a warm-pool cap."""

    def __init__(self, idle_timeout: float = 600.0, max_warm: int = 32):
        if idle_timeout <= 0 or max_warm < 0:
            raise ValueError("idle_timeout must be > 0 and max_warm >= 0")
        self.idle_timeout = idle_timeout
        self.max_warm = max_warm

    def victims(self, instances: List["FunctionInstance"], now: float) -> List["FunctionInstance"]:
        waiting = [
            instance for instance in instances
            if instance.state == FunctionState.WAITING
        ]
        victims = [
            instance for instance in waiting
            if now - instance.last_used >= self.idle_timeout
        ]
        survivors = sorted(
            (instance for instance in waiting if instance not in victims),
            key=lambda instance: instance.last_used,
        )
        overflow = len(survivors) - self.max_warm
        if overflow > 0:
            victims.extend(survivors[:overflow])
        return victims


class FunctionInstance:
    """A deployed function and its (possibly absent) container."""

    def __init__(self, name: str, image_name: str, runtime: str,
                 handler: Handler, services: Dict[str, Any]):
        self.name = name
        self.image_name = image_name
        self.runtime = runtime
        self.handler = handler
        self.services = services
        self.state = FunctionState.DEAD
        self.container_name: Optional[str] = None
        self.last_used = 0.0
        self.invocations = 0
        self.cold_starts = 0
        self.local: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return "FunctionInstance(%s, %s)" % (self.name, self.state)


class FaasPlatform:
    """The serverless provider: deploys functions, routes invocations."""

    def __init__(self, engine: ContainerEngine,
                 policy: Optional[KeepAlivePolicy] = None,
                 server_core: int = 1, tracer=None):
        self.engine = engine
        self.policy = policy or KeepAlivePolicy()
        self.server_core = server_core
        self.clock = 0.0
        self._functions: Dict[str, FunctionInstance] = {}
        #: Optional :class:`repro.obs.Tracer`; invocations then record
        #: the queue → cold-boot → exec → respond lifecycle as spans.
        self.tracer = tracer
        if tracer is not None and engine.tracer is None:
            engine.tracer = tracer

    # -- deployment -------------------------------------------------------------

    def deploy(self, name: str, image_name: str, runtime: str, handler: Handler,
               services: Optional[Dict[str, Any]] = None) -> FunctionInstance:
        if name in self._functions:
            raise ValueError("function %r already deployed" % name)
        self.engine.pull(image_name)
        instance = FunctionInstance(name, image_name, runtime, handler, services or {})
        self._functions[name] = instance
        return instance

    def function(self, name: str) -> FunctionInstance:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError("no function %r deployed (have %s)"
                           % (name, sorted(self._functions))) from None

    def functions(self) -> List[FunctionInstance]:
        return list(self._functions.values())

    # -- invocation --------------------------------------------------------------

    def invoke(self, name: str, payload: Optional[Dict[str, Any]] = None,
               advance_clock: float = 1.0,
               raise_errors: bool = True) -> InvocationRecord:
        """Route one request; cold-starts the instance if it is dead.

        With ``raise_errors=False`` a handler exception becomes an error
        response on the record (``record.error`` set, ``result`` carrying
        the message) instead of propagating — the production-FaaS
        behaviour, where a crashing function returns a 500 and the
        instance is recycled to the dead state.
        """
        instance = self.function(name)
        payload = payload or {}
        # ``advance_clock`` is the logical time since the previous platform
        # activity: it elapses *before* this request arrives, so idle
        # instances can be reaped first and this invocation correctly
        # observes a dead instance after a long gap.
        self.clock += advance_clock
        self._reap()
        tracer = self.tracer
        if tracer is not None:
            invoke_start = tracer.now
            tracer.advance(1)  # routing/queueing delay, one logical tick
            tracer.complete("queue", "invocation", invoke_start, 1,
                            TRACK_INVOCATION, args={"function": name})
        cold = instance.state == FunctionState.DEAD
        if cold:
            instance.local = {}  # in-process state dies with the container
            if tracer is not None:
                boot_start = tracer.now
                self._cold_start(instance)
                boot_ticks = tracer.now - boot_start
                tracer.complete("cold-boot", "invocation", boot_start,
                                boot_ticks if boot_ticks > 0 else 1,
                                TRACK_INVOCATION,
                                args={"function": name,
                                      "container": instance.container_name})
            else:
                self._cold_start(instance)
        instance.state = FunctionState.RUNNING
        if tracer is not None:
            exec_start = tracer.now

        record = InvocationRecord(
            function=name,
            runtime=instance.runtime,
            cold=cold,
            request_bytes=encoded_size(payload),
            sequence=instance.invocations + 1,
        )
        context = InvocationContext(record, instance.services, instance.local)
        # Drain any stale metering so the record sees only this request.
        for service_name, service in instance.services.items():
            if hasattr(service, "take_receipt"):
                service.take_receipt()
        try:
            record.result = instance.handler(payload, context)
        except Exception as failure:  # noqa: BLE001 - FaaS error surface
            if raise_errors:
                raise
            record.error = "%s: %s" % (type(failure).__name__, failure)
            record.result = {"error": record.error}
        for service_name, service in instance.services.items():
            if hasattr(service, "take_receipt"):
                record.attach_receipt(service_name, service.take_receipt())
        record.response_bytes = encoded_size(record.result)
        if tracer is not None:
            # The handler ran functionally; detailed cycle attribution
            # comes from the harness's timing run that follows.  Charge a
            # fixed tick so the lifecycle phases stay visibly ordered.
            tracer.advance(1)
            tracer.complete("exec", "invocation", exec_start,
                            tracer.now - exec_start, TRACK_INVOCATION,
                            args={"sequence": record.sequence,
                                  "cold": cold, "ok": record.ok})
            respond_start = tracer.now
            tracer.advance(1)
            tracer.complete("respond", "invocation", respond_start, 1,
                            TRACK_INVOCATION,
                            args={"bytes": record.response_bytes})

        instance.invocations += 1
        if cold:
            instance.cold_starts += 1
        instance.last_used = self.clock
        if record.ok:
            instance.state = FunctionState.WAITING
        else:
            # A crashed container is recycled, not kept warm.
            self.kill(name)
        self._reap()  # enforce the warm-pool cap immediately
        if tracer is not None:
            total = tracer.now - invoke_start
            tracer.complete("invoke:%s" % name, "invocation", invoke_start,
                            total if total > 0 else 1, TRACK_INVOCATION,
                            args={"cold": cold,
                                  "sequence": record.sequence})
        return record

    def _cold_start(self, instance: FunctionInstance) -> None:
        container_name = "%s-run%d" % (instance.name, instance.cold_starts + 1)
        try:
            self.engine.create(instance.image_name, name=container_name,
                               cpu_pin=self.server_core)
        except EngineError:
            # Image evicted or engine rebuilt: pull again and retry once.
            self.engine.pull(instance.image_name)
            self.engine.create(instance.image_name, name=container_name,
                               cpu_pin=self.server_core)
        self.engine.start(container_name)
        instance.container_name = container_name

    def _reap(self) -> None:
        for victim in self.policy.victims(list(self._functions.values()), self.clock):
            self.kill(victim.name)

    def kill(self, name: str) -> None:
        """Force an instance to the dead state (provider reclaim)."""
        instance = self.function(name)
        if instance.container_name is not None:
            try:
                self.engine.stop(instance.container_name)
                self.engine.remove(instance.container_name)
            except EngineError:
                pass  # already stopped
            instance.container_name = None
        instance.state = FunctionState.DEAD

    def state_of(self, name: str) -> str:
        return self.function(name).state

    def __repr__(self) -> str:
        return "FaasPlatform(%d functions, clock=%.1f)" % (
            len(self._functions), self.clock,
        )
