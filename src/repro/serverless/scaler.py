"""Concurrency autoscaling: the Knative-KPA analog for instance pools.

The single-instance measurement path (``FaasPlatform.invoke``) shows the
paper's cold/warm dichotomy one request at a time.  What it cannot show
is the *service-level* behaviour the related work (Serv-Drishti,
Vitamin-V) argues actually dominates production serverless: requests
contending for instances, queues building during bursts, and the
cold-start storms a concurrency-driven autoscaler triggers when it
reacts to that contention.  This module supplies the scaling half of
that story; :mod:`repro.serverless.router` supplies the queueing half.

The model follows Knative's KPA (pod autoscaler) shape:

* **target concurrency** — each instance serves at most
  ``target_concurrency`` requests at once (Knative's
  ``containerConcurrency``); desired instances =
  ``ceil(observed_concurrency / target_concurrency)``;
* **stable vs panic window** — observed concurrency is a time-weighted
  average over a long *stable* window, but when the short *panic*
  window's average crosses ``panic_threshold`` × current capacity the
  autoscaler enters panic mode: it scales on the short window and never
  scales down until the panic expires;
* **scale to zero** — idle instances are reaped through the existing
  :class:`~repro.serverless.faas.KeepAlivePolicy`, so a pool that sees
  no traffic for ``scale_to_zero_after`` ticks shrinks back to
  ``min_instances`` (and the next burst pays cold starts again — the
  amplification loop the paper's cold/warm numbers predict).

Everything is deterministic: decisions depend only on the logical tick
clock and the observed sample history, never on wall clock, so two serve
runs with the same seed produce byte-identical scaling-event logs
(asserted by ``tests/serverless/test_router.py``).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

_CONFIG_FIELDS = (
    "target_concurrency", "max_instances", "min_instances",
    "queue_capacity", "stable_window", "panic_window", "panic_threshold",
    "scale_to_zero_after", "evaluate_every", "cold_start_ticks",
)


class ScalingConfig:
    """Autoscaler + router knobs, keyword-only and immutable.

    Instances are hashable and picklable and expose :meth:`fingerprint`
    so a scaling configuration can ride on a
    :class:`~repro.core.spec.MeasurementSpec` and participate in result
    cache identity — two serve experiments with different scaling knobs
    must never share a content address.

    ``target_concurrency``
        Requests one instance serves concurrently (Knative's
        ``containerConcurrency``).  The router enforces this as a hard
        bound; a property test asserts it is never exceeded.
    ``max_instances`` / ``min_instances``
        Pool size clamp.  ``min_instances=0`` enables scale-to-zero.
    ``queue_capacity``
        Bounded per-function queue; arrivals beyond it are rejected
        (admission control — the 429/overflow path, metered as
        ``serve.rejected`` on the record).
    ``stable_window`` / ``panic_window`` / ``panic_threshold``
        KPA windowing (ticks).  Panic triggers when the panic-window
        average demands ``panic_threshold`` × current ready capacity.
    ``scale_to_zero_after``
        Idle ticks before the keep-alive policy reaps instances.
    ``evaluate_every``
        Autoscaler evaluation period in ticks.
    ``cold_start_ticks``
        Runtime-initialisation ticks a new instance pays on top of the
        container engine's create+start costs before it can serve.
    """

    __slots__ = _CONFIG_FIELDS

    def __init__(self, *, target_concurrency: int = 1, max_instances: int = 8,
                 min_instances: int = 0, queue_capacity: int = 64,
                 stable_window: int = 600, panic_window: int = 60,
                 panic_threshold: float = 2.0, scale_to_zero_after: int = 1200,
                 evaluate_every: int = 20, cold_start_ticks: int = 64):
        if target_concurrency < 1:
            raise ValueError("target_concurrency must be >= 1")
        if max_instances < 1:
            raise ValueError("max_instances must be >= 1")
        if not 0 <= min_instances <= max_instances:
            raise ValueError("need 0 <= min_instances <= max_instances")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if stable_window < 1 or panic_window < 1 or evaluate_every < 1:
            raise ValueError("windows and evaluate_every must be >= 1 tick")
        if panic_window > stable_window:
            raise ValueError("panic_window must not exceed stable_window")
        if panic_threshold <= 1.0:
            raise ValueError("panic_threshold must be > 1.0")
        if scale_to_zero_after < 1:
            raise ValueError("scale_to_zero_after must be >= 1 tick")
        if cold_start_ticks < 0:
            raise ValueError("cold_start_ticks must be >= 0")
        set_field = object.__setattr__
        set_field(self, "target_concurrency", int(target_concurrency))
        set_field(self, "max_instances", int(max_instances))
        set_field(self, "min_instances", int(min_instances))
        set_field(self, "queue_capacity", int(queue_capacity))
        set_field(self, "stable_window", int(stable_window))
        set_field(self, "panic_window", int(panic_window))
        set_field(self, "panic_threshold", float(panic_threshold))
        set_field(self, "scale_to_zero_after", int(scale_to_zero_after))
        set_field(self, "evaluate_every", int(evaluate_every))
        set_field(self, "cold_start_ticks", int(cold_start_ticks))

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("ScalingConfig is immutable; use replace()")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("ScalingConfig is immutable; use replace()")

    def replace(self, **changes) -> "ScalingConfig":
        """A copy with the given knobs swapped (dataclasses.replace style)."""
        fields: Dict[str, Any] = {name: getattr(self, name)
                                  for name in _CONFIG_FIELDS}
        unknown = set(changes) - set(_CONFIG_FIELDS)
        if unknown:
            raise TypeError("unknown scaling fields: %s" % sorted(unknown))
        fields.update(changes)
        return ScalingConfig(**fields)

    @classmethod
    def pinned(cls, instances: int = 1, **overrides) -> "ScalingConfig":
        """Autoscaling effectively off: a fixed pool of ``instances``.

        ``min_instances == max_instances`` means the evaluator can never
        add or remove capacity, so the router degenerates to a static
        pool — with ``instances=1`` that is the single-instance world of
        the measurement pipeline, just with an explicit queue.
        """
        overrides.setdefault("target_concurrency", 1)
        return cls(min_instances=instances, max_instances=instances,
                   **overrides)

    def fingerprint(self) -> Tuple:
        """Identity tuple for result-cache keying and spec equality."""
        return tuple(getattr(self, name) for name in _CONFIG_FIELDS)

    def as_dict(self) -> Dict[str, Any]:
        """Round-trippable view (JSON exporters, `from_dict`)."""
        return {name: getattr(self, name) for name in _CONFIG_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScalingConfig":
        """Inverse of :meth:`as_dict`."""
        return cls(**{name: data[name] for name in _CONFIG_FIELDS})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScalingConfig):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return "ScalingConfig(target=%d, instances=%d..%d, queue=%d)" % (
            self.target_concurrency, self.min_instances, self.max_instances,
            self.queue_capacity,
        )

    # -- pickling (slots, no __dict__) -------------------------------------

    def __getstate__(self):
        return {name: getattr(self, name) for name in _CONFIG_FIELDS}

    def __setstate__(self, state):
        for name in _CONFIG_FIELDS:
            object.__setattr__(self, name, state[name])


class ScalingEvent:
    """One autoscaler decision, stamped with the logical tick it fired.

    The serve report prints these via :meth:`format`; the determinism
    smoke test diffs the whole formatted log between two runs.
    """

    __slots__ = ("tick", "function", "kind", "from_instances",
                 "to_instances", "reason")

    #: Event kinds, in the vocabulary the report prints.
    UP = "scale-up"
    DOWN = "scale-down"
    TO_ZERO = "to-zero"
    PANIC_ENTER = "panic-enter"
    PANIC_EXIT = "panic-exit"
    BOOT_FAILED = "boot-failed"
    RECYCLE = "recycle"
    NODE_DOWN = "node-down"
    NODE_UP = "node-up"

    def __init__(self, tick: int, function: str, kind: str,
                 from_instances: int, to_instances: int, reason: str):
        self.tick = tick
        self.function = function
        self.kind = kind
        self.from_instances = from_instances
        self.to_instances = to_instances
        self.reason = reason

    def format(self) -> str:
        """Canonical single-line rendering (byte-stable across runs)."""
        return "[tick %8d] %-12s %-28s %d -> %d  (%s)" % (
            self.tick, self.kind, self.function,
            self.from_instances, self.to_instances, self.reason,
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view for the ``serve --out`` artifact."""
        return {"tick": self.tick, "function": self.function,
                "kind": self.kind, "from": self.from_instances,
                "to": self.to_instances, "reason": self.reason}

    def __repr__(self) -> str:
        return "ScalingEvent(%s @ %d: %d -> %d)" % (
            self.kind, self.tick, self.from_instances, self.to_instances,
        )


def windowed_average(samples: List[Tuple[int, int]], now: int,
                     window: int) -> float:
    """Time-weighted average of a step signal over ``[now - window, now]``.

    ``samples`` is an ordered list of ``(tick, value)`` pairs: the signal
    holds ``value`` from ``tick`` until the next sample.  Ticks before
    the first sample count as zero — a pool that has only just seen
    traffic is mostly-idle over a long window, which is exactly the
    damping the stable window exists to provide.
    """
    if not samples:
        return 0.0
    start = now - window
    if start < 0:
        start = 0
    if now <= start:
        return float(samples[-1][1])
    total = 0.0
    # Walk the step function across the window.  Segment i spans
    # [tick_i, tick_{i+1}); the last segment extends to `now`.
    for index, (tick, value) in enumerate(samples):
        seg_start = tick
        seg_end = samples[index + 1][0] if index + 1 < len(samples) else now
        lo = seg_start if seg_start > start else start
        hi = seg_end if seg_end < now else now
        if hi > lo:
            total += value * (hi - lo)
    return total / float(now - start)


class ConcurrencyAutoscaler:
    """KPA-style desired-instance calculator over observed concurrency.

    The router feeds it ``observe(tick, in_flight)`` on every state
    change (``in_flight`` = requests executing + requests queued) and
    asks :meth:`desired` at each evaluation tick.  Pure arithmetic over
    the sample history — no randomness, no wall clock — so the decision
    stream is a deterministic function of the arrival trace.
    """

    def __init__(self, config: ScalingConfig, function: str):
        self.config = config
        self.function = function
        #: Step-signal samples of in-flight demand: ``(tick, value)``.
        self.samples: List[Tuple[int, int]] = []
        #: Tick until which panic mode holds (0 = not panicking).
        self.panic_until = 0

    def observe(self, tick: int, in_flight: int) -> None:
        """Record the demand signal at ``tick`` (monotone non-decreasing)."""
        if self.samples and self.samples[-1][0] == tick:
            self.samples[-1] = (tick, in_flight)
        else:
            self.samples.append((tick, in_flight))
        # Keep just enough history to cover the stable window.
        horizon = tick - self.config.stable_window
        while len(self.samples) > 2 and self.samples[1][0] <= horizon:
            self.samples.pop(0)

    @property
    def panicking(self) -> bool:
        return self.panic_until > 0

    def desired(self, now: int, ready: int) -> Tuple[int, Optional[str]]:
        """Desired instance count at ``now`` given ``ready`` capacity.

        Returns ``(count, transition)`` where ``transition`` is
        ``"panic-enter"`` / ``"panic-exit"`` when this evaluation crossed
        a panic boundary (the router turns those into scaling events).
        """
        config = self.config
        stable_avg = windowed_average(self.samples, now, config.stable_window)
        panic_avg = windowed_average(self.samples, now, config.panic_window)
        want_stable = int(math.ceil(stable_avg / config.target_concurrency))
        want_panic = int(math.ceil(panic_avg / config.target_concurrency))

        transition: Optional[str] = None
        capacity = ready * config.target_concurrency
        if ready > 0 and panic_avg >= config.panic_threshold * capacity:
            if not self.panicking:
                transition = "panic-enter"
            self.panic_until = now + config.stable_window
        elif self.panicking and now >= self.panic_until:
            self.panic_until = 0
            transition = "panic-exit"

        if self.panicking:
            # Panic mode: scale on the short window, never down.
            want = max(want_panic, ready)
        else:
            want = want_stable
        if want < config.min_instances:
            want = config.min_instances
        if want > config.max_instances:
            want = config.max_instances
        return want, transition

    def __repr__(self) -> str:
        return "ConcurrencyAutoscaler(%s, %d samples%s)" % (
            self.function, len(self.samples),
            ", PANIC" if self.panicking else "",
        )
