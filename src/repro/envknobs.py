"""Hardened parsing for ``REPRO_*`` environment knobs.

Several tuning knobs are read from the environment at import time
(``REPRO_JIT_THRESHOLD``, ``REPRO_JIT_MAX_STMTS``) or on first use
(``REPRO_JOBS``).  A typo like ``REPRO_JIT_THRESHOLD=yes`` used to raise
an unhandled ``ValueError`` — at *import* time for the JIT knobs, which
took down every entry point before it could print a usable message.
Knobs are tuning hints, not configuration contracts: a malformed value
falls back to the default with a warning instead of aborting.

This module lives at the package root (not under ``repro.core`` or
``repro.sim``) so both layers can share it without an import cycle.
"""

from __future__ import annotations

import os
import warnings


def env_int(name: str, default: int) -> int:
    """Integer knob ``name`` from the environment, or ``default``.

    Unset and empty values quietly yield ``default``; a set-but-malformed
    value yields ``default`` with a :class:`UserWarning` naming the knob
    and the rejected text, so a typo degrades to default behaviour
    instead of crashing the importing process.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw.strip())
    except ValueError:
        warnings.warn(
            "ignoring %s=%r: not an integer, using default %d"
            % (name, raw, default),
            stacklevel=2,
        )
        return default
