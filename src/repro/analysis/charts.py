"""ASCII chart rendering: the paper's bar figures, in a terminal.

Benches print these next to the numeric tables so a reproduction run
shows the figure's *shape* at a glance — who wins, by roughly what
factor — without leaving the shell.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    partial_index = int(remainder * (len(_BLOCKS) - 1))
    if partial_index > 0:
        bar += _BLOCKS[partial_index]
    return bar


def grouped_hbar_chart(
    title: str,
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal grouped bars: one group per label, one bar per series.

    The layout mirrors the thesis's figures (Fig 4.4 et al.): benchmarks
    down the side, one bar per measurement mode, on a shared linear scale.
    """
    if not labels:
        raise ValueError("chart needs at least one label")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                "series %r has %d values for %d labels"
                % (name, len(values), len(labels))
            )
    maximum = max((value for values in series.values() for value in values),
                  default=0.0)
    label_width = max(len(label) for label in labels)
    series_width = max(len(name) for name in series)

    lines = [title, "=" * len(title)]
    for index, label in enumerate(labels):
        for series_index, (name, values) in enumerate(series.items()):
            value = values[index]
            prefix = label.ljust(label_width) if series_index == 0 else \
                " " * label_width
            lines.append("%s  %s %s %s" % (
                prefix,
                name.rjust(series_width),
                _bar(value, maximum, width).ljust(width),
                _format_value(value, unit),
            ))
        lines.append("")
    lines.append("scale: 0 .. %s" % _format_value(maximum, unit))
    return "\n".join(lines)


def sparkline(values: Iterable[float]) -> str:
    """A one-line trend (eight levels), for quick sweep summaries."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    marks = "▁▂▃▄▅▆▇█"
    if span == 0:
        return marks[0] * len(values)
    return "".join(
        marks[int((value - low) / span * (len(marks) - 1))] for value in values
    )


def serving_timeline(samples: Sequence[Sequence[int]], width: int = 60) -> str:
    """Queue depth, in-flight demand and pool size over a serve run.

    ``samples`` is the ``ServeResult.samples`` list — ``(tick, queue,
    in_flight, instances)`` tuples recorded on every state change.  Each
    signal is resampled onto ``width`` time bins (peak-preserving: a bin
    shows the maximum the step signal reached inside it, so one-tick
    queue spikes stay visible) and rendered as a sparkline row.  Purely
    a function of its input: byte-identical for byte-identical runs.
    """
    if not samples:
        raise ValueError("no samples to chart")
    if width < 1:
        raise ValueError("width must be >= 1")
    start = samples[0][0]
    span = max(1, samples[-1][0] - start)
    rows = (("queue", 1), ("in-flight", 2), ("instances", 3))
    lines = []
    for name, column in rows:
        series = _resample_max(
            [(sample[0], sample[column]) for sample in samples],
            start, span, width)
        lines.append("%-10s %s  peak %d" % (
            name, sparkline(series), int(max(series))))
    lines.append("%-10s ticks %d..%d" % ("", start, start + span))
    return "\n".join(lines)


def cluster_timeline(node_samples: Sequence[Sequence], width: int = 60) -> str:
    """Per-node instance population over a clustered serve run.

    ``node_samples`` is the ``ServeResult.node_samples`` list —
    ``(tick, (n0_population, n1_population, ...))`` tuples recorded by
    :class:`~repro.serverless.platform.ClusterPlatform` whenever any
    node's population changes.  One sparkline row per node, on the same
    peak-preserving resampling as :func:`serving_timeline`; a node that
    went down shows its population dropping to zero until recovery.
    Purely a function of its input: byte-identical for byte-identical
    runs.
    """
    if not node_samples:
        raise ValueError("no node samples to chart")
    if width < 1:
        raise ValueError("width must be >= 1")
    start = node_samples[0][0]
    span = max(1, node_samples[-1][0] - start)
    nodes = len(node_samples[0][1])
    lines = []
    for node in range(nodes):
        series = _resample_max(
            [(sample[0], sample[1][node]) for sample in node_samples],
            start, span, width)
        lines.append("%-10s %s  peak %d" % (
            "n%d" % node, sparkline(series), int(max(series))))
    lines.append("%-10s ticks %d..%d" % ("", start, start + span))
    return "\n".join(lines)


def _resample_max(points: List, start: int, span: int, width: int) -> List[float]:
    """Peak-preserving resample of a step signal onto ``width`` bins."""
    bins = [0.0] * width
    value = float(points[0][1])
    index = 0
    for position in range(width):
        high = start + span * (position + 1) / float(width)
        best = value  # the signal carries its last level into the bin
        while index < len(points) and points[index][0] < high:
            value = float(points[index][1])
            if value > best:
                best = value
            index += 1
        bins[position] = best
    return bins


def _format_value(value: float, unit: str) -> str:
    if value >= 1e9:
        text = "%.2fG" % (value / 1e9)
    elif value >= 1e6:
        text = "%.2fM" % (value / 1e6)
    elif value >= 1e3:
        text = "%.1fk" % (value / 1e3)
    elif isinstance(value, float) and not value.is_integer():
        text = "%.2f" % value
    else:
        text = "%d" % value
    return text + unit
