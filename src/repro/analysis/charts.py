"""ASCII chart rendering: the paper's bar figures, in a terminal.

Benches print these next to the numeric tables so a reproduction run
shows the figure's *shape* at a glance — who wins, by roughly what
factor — without leaving the shell.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    partial_index = int(remainder * (len(_BLOCKS) - 1))
    if partial_index > 0:
        bar += _BLOCKS[partial_index]
    return bar


def grouped_hbar_chart(
    title: str,
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal grouped bars: one group per label, one bar per series.

    The layout mirrors the thesis's figures (Fig 4.4 et al.): benchmarks
    down the side, one bar per measurement mode, on a shared linear scale.
    """
    if not labels:
        raise ValueError("chart needs at least one label")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                "series %r has %d values for %d labels"
                % (name, len(values), len(labels))
            )
    maximum = max((value for values in series.values() for value in values),
                  default=0.0)
    label_width = max(len(label) for label in labels)
    series_width = max(len(name) for name in series)

    lines = [title, "=" * len(title)]
    for index, label in enumerate(labels):
        for series_index, (name, values) in enumerate(series.items()):
            value = values[index]
            prefix = label.ljust(label_width) if series_index == 0 else \
                " " * label_width
            lines.append("%s  %s %s %s" % (
                prefix,
                name.rjust(series_width),
                _bar(value, maximum, width).ljust(width),
                _format_value(value, unit),
            ))
        lines.append("")
    lines.append("scale: 0 .. %s" % _format_value(maximum, unit))
    return "\n".join(lines)


def sparkline(values: Iterable[float]) -> str:
    """A one-line trend (eight levels), for quick sweep summaries."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    marks = "▁▂▃▄▅▆▇█"
    if span == 0:
        return marks[0] * len(values)
    return "".join(
        marks[int((value - low) / span * (len(marks) - 1))] for value in values
    )


def _format_value(value: float, unit: str) -> str:
    if value >= 1e9:
        text = "%.2fG" % (value / 1e9)
    elif value >= 1e6:
        text = "%.2fM" % (value / 1e6)
    elif value >= 1e3:
        text = "%.1fk" % (value / 1e3)
    elif isinstance(value, float) and not value.is_integer():
        text = "%.2f" % value
    else:
        text = "%d" % value
    return text + unit
