"""Result analysis and rendering utilities."""

from repro.analysis.charts import grouped_hbar_chart, sparkline

__all__ = ["grouped_hbar_chart", "sparkline"]
