"""Result analysis and rendering: the paper's figures, in a terminal.

ASCII charts let a reproduction run show each figure's *shape* — who
wins, by roughly what factor — next to the numeric tables without any
plotting dependency: grouped horizontal bars for the cold/warm/ISA
comparisons (Fig 4.4 et al.), sparklines for sweep summaries, and
:func:`serving_timeline` for a serve run's queue-depth / concurrency /
pool-size history.  Everything renders deterministically from its
inputs, so chart text participates in the byte-identity checks.
"""

from repro.analysis.charts import (
    grouped_hbar_chart,
    serving_timeline,
    sparkline,
)

__all__ = ["grouped_hbar_chart", "serving_timeline", "sparkline"]
