"""repro: benchmarking support for RISC-V CPUs in serverless computing.

A complete, self-contained reproduction of the thesis's infrastructure:
the vSwarm workload suite, the serverless platform substrate, the
datastores, the gem5-analog microarchitectural simulator, the QEMU-analog
emulator, and the vSwarm-u experiment harness.

Typical entry points::

    from repro import ExperimentHarness, SimScale, get_function

    harness = ExperimentHarness(isa="riscv", scale=SimScale(time=512, space=16))
    measurement = harness.measure_function(get_function("fibonacci-go"))

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    BENCH,
    ExperimentHarness,
    FunctionMeasurement,
    NATIVE,
    PlatformConfig,
    SimScale,
    TEST,
    platform_for,
    run_suite,
)
from repro.workloads import all_functions, get_function

__version__ = "1.0.0"

__all__ = [
    "BENCH",
    "ExperimentHarness",
    "FunctionMeasurement",
    "NATIVE",
    "PlatformConfig",
    "SimScale",
    "TEST",
    "all_functions",
    "get_function",
    "platform_for",
    "run_suite",
    "__version__",
]
