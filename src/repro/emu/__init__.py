"""QEMU-analog emulation platform and system-software artifacts.

The thesis's development platform was a QEMU RISC-V VM (§3.2); its gem5
runs needed custom-built Linux kernels (modules built in — gem5 cannot
load them dynamically, §3.4.2.2) and, on RISC-V, an explicit OpenSBI
bootloader (§3.4.2.3).  This package models those artifacts and the
emulator itself:

* :mod:`repro.emu.kernel` — kernel configs, the docker check-config
  flags, mod2yes builds, and the emergency-mode failure when a disk
  image needs features the kernel lacks;
* :mod:`repro.emu.bootchain` — per-ISA boot chains (OpenSBI vs built-in);
* :mod:`repro.emu.disk` — qemu-img-style disk images holding packages and
  container images;
* :mod:`repro.emu.qemu` — the emulated VM with a TCG/KVM timing model,
  used for development workflows and the MongoDB-vs-Cassandra wall-time
  comparison (Fig 4.20) that could not run in gem5 (§3.5.2.3).
"""

from repro.emu.bootchain import BootChain, Bootloader, OPENSBI
from repro.emu.disk import DiskImage
from repro.emu.kernel import (
    BootFailure,
    KernelBuild,
    KernelConfig,
    KernelImage,
)
from repro.emu.qemu import QemuVM, make_dev_vm

__all__ = [
    "BootChain",
    "BootFailure",
    "Bootloader",
    "DiskImage",
    "KernelBuild",
    "KernelConfig",
    "KernelImage",
    "OPENSBI",
    "QemuVM",
    "make_dev_vm",
]
