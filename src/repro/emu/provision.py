"""Provisioning workflows: the porting war stories of §3, executable.

The thesis's hardest chapters are not simulation but software
provisioning on an immature ecosystem: Docker built from source inside
the emulated VM (~3 hours, §3.2.2), a 4-hour ``pip install grpcio`` that
then fails to import with ``undefined symbol:
atomic-compare-exchange-1`` until libatomic is preloaded (§3.3.1.2), a
bazel toolchain that neither builds natively nor cross-compiles, and a
MongoDB port that simply does not exist.  This module models those
workflows with their failure modes and documented workarounds, on the
same wall-clock cost model the VM uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.emu.qemu import QemuVM

#: Native dynamic instruction counts of provisioning jobs.
_JOB_INSTRUCTIONS = {
    "apt-install": 30_000_000_000,
    "docker-source-build": 2_400_000_000_000,   # ~3h under cross-arch TCG
    "pip-grpcio-build": 1_350_000_000_000,      # ~4h under cross-arch TCG
    "pip-pure-python": 40_000_000_000,
    "kernel-build": 900_000_000_000,
}

#: Packages the Ubuntu riscv64 archive did not carry (June 2024, §3.2.2).
_MISSING_ON_RISCV_APT = {"docker", "containerd", "rootlesskit"}

#: Software with no RISC-V port at all.
_NO_RISCV_PORT = {"mongodb", "bazel"}

#: Python modules whose riscv64 builds hit the libatomic issue.
_NEEDS_LIBATOMIC_PRELOAD = {"grpcio", "grpcio-tools"}


class ProvisionError(RuntimeError):
    """A provisioning step failed (often with a documented workaround)."""


class ProvisionLog:
    """What happened, with wall-clock costs."""

    def __init__(self):
        self.steps: List[Dict] = []

    def add(self, action: str, outcome: str, seconds: float) -> None:
        self.steps.append({"action": action, "outcome": outcome,
                           "seconds": seconds})

    def total_seconds(self) -> float:
        return sum(step["seconds"] for step in self.steps)

    def render(self) -> str:
        lines = ["provisioning log (%.1f h total)"
                 % (self.total_seconds() / 3600)]
        for step in self.steps:
            lines.append("  %-28s %-12s %8.1f min" % (
                step["action"], step["outcome"], step["seconds"] / 60))
        return "\n".join(lines)


class Provisioner:
    """Installs software into a VM the way the platform allows."""

    def __init__(self, vm: QemuVM):
        self.vm = vm
        self.log = ProvisionLog()
        self.installed: Set[str] = set()
        self.ld_preload: Set[str] = set()

    def _charge(self, job: str) -> float:
        return self.vm.charge_instructions(_JOB_INSTRUCTIONS[job])

    # -- package manager --------------------------------------------------------

    def apt_install(self, package: str) -> None:
        """Install from the distro archive — if the arch carries it."""
        if self.vm.guest_arch == "riscv" and package in _MISSING_ON_RISCV_APT:
            raise ProvisionError(
                "E: Unable to locate package %s (not in the riscv64 archive "
                "as of the thesis's June 2024 snapshot; build from source)"
                % package
            )
        seconds = self._charge("apt-install")
        self.installed.add(package)
        self.log.add("apt install %s" % package, "ok", seconds)
        self.vm.disk.install_package(package)

    # -- source builds -------------------------------------------------------------

    def build_from_source(self, package: str) -> None:
        """The from-source fallback (Docker's ~3 hour in-VM build)."""
        if package in _NO_RISCV_PORT and self.vm.guest_arch == "riscv":
            raise ProvisionError(
                "%s has no RISC-V port; the thesis could not produce one "
                "either (%s)" % (package, "§3.3.3" if package == "mongodb"
                                 else "§3.3.1.2")
            )
        seconds = self._charge("docker-source-build")
        self.installed.add(package)
        self.log.add("build %s from source" % package, "ok", seconds)
        self.vm.disk.install_package(package, size_bytes=220 * 1024 * 1024)

    def install_docker(self) -> None:
        """The §3.2.2 path: apt on x86, from-source on RISC-V."""
        try:
            self.apt_install("docker")
        except ProvisionError:
            self.log.add("apt install docker", "missing", 0.0)
            for component in ("docker", "containerd", "rootlesskit"):
                self.build_from_source(component)

    # -- pip ----------------------------------------------------------------------------

    def preload_libatomic(self) -> None:
        """The GitHub-issue workaround: LD_PRELOAD=libatomic.so.1."""
        self.ld_preload.add("libatomic.so.1")
        self.log.add("export LD_PRELOAD=libatomic.so.1", "ok", 0.0)

    def pip_install(self, module: str) -> None:
        """pip install — gigantic under TCG for modules that compile C."""
        job = ("pip-grpcio-build" if module in _NEEDS_LIBATOMIC_PRELOAD
               else "pip-pure-python")
        seconds = self._charge(job)
        self.installed.add(module)
        self.log.add("pip install %s" % module, "ok", seconds)

    def import_module(self, module: str) -> None:
        """Importing is where the libatomic problem actually bites."""
        if module not in self.installed:
            raise ProvisionError("ModuleNotFoundError: %s" % module)
        if (self.vm.guest_arch == "riscv"
                and module in _NEEDS_LIBATOMIC_PRELOAD
                and "libatomic.so.1" not in self.ld_preload):
            raise ProvisionError(
                "ImportError: undefined symbol: atomic-compare-exchange-1 "
                "(preload libatomic, per the GitHub issue the thesis found)"
            )
        self.log.add("import %s" % module, "ok", 0.0)


def port_python_function(vm: QemuVM) -> ProvisionLog:
    """The full §3.3.1.2 journey for one Python function, with workaround."""
    provisioner = Provisioner(vm)
    provisioner.install_docker()
    provisioner.pip_install("grpcio")
    provisioner.pip_install("grpcio-tools")
    try:
        provisioner.import_module("grpcio")
    except ProvisionError:
        provisioner.log.add("import grpcio", "undefined symbol", 0.0)
        provisioner.preload_libatomic()
        provisioner.import_module("grpcio")
    return provisioner.log
