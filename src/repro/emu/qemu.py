"""The QEMU-analog virtual machine.

Functional execution with a wall-clock cost model: instructions retired
divided by the platform's effective emulation rate.  KVM acceleration
runs near host speed but only for same-architecture guests; TCG
emulation of RISC-V on an x86 host runs an order of magnitude slower —
the reason the thesis's in-VM Docker build took ~3 hours and the pip
install of grpcio ~4 (§3.2.2, §3.3.1.2), and why Cassandra containers
took ~17 minutes to boot there (§3.3.3.2).

The VM also times serverless requests functionally, which is how the
thesis produced the MongoDB-vs-Cassandra comparison (Fig 4.20) after
MongoDB refused to boot in gem5 (§3.5.2.3).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.db.engine import encoded_size
from repro.emu.bootchain import BootChain
from repro.emu.disk import DiskImage
from repro.emu.kernel import BootFailure, KernelImage
from repro.serverless.faas import InvocationContext, InvocationRecord
from repro.workloads.builder import (
    SERVICE_COSTS,
    _DB_CONNECT_INSTRS,
    _DEFAULT_SERVICE_COST,
    _SERIALIZE_INSTRS_PER_BYTE,
)
from repro.workloads.function import VSwarmFunction

#: Effective execution rates in millions of instructions per second.
HOST_MIPS = 2400.0
KVM_MIPS = 2000.0
TCG_SAME_ARCH_MIPS = 550.0
TCG_CROSS_ARCH_MIPS = 95.0


class QemuVM:
    """An emulated machine bound to a kernel, a boot chain and a disk."""

    def __init__(
        self,
        guest_arch: str,
        kernel: KernelImage,
        disk: DiskImage,
        bootchain: Optional[BootChain] = None,
        host_arch: str = "x86",
        accel: str = "auto",
    ):
        if kernel.arch != guest_arch:
            raise BootFailure(
                "kernel is %s but guest is %s" % (kernel.arch, guest_arch)
            )
        if disk.arch != guest_arch:
            raise BootFailure("disk is %s but guest is %s" % (disk.arch, guest_arch))
        self.guest_arch = guest_arch
        self.host_arch = host_arch
        self.kernel = kernel
        self.disk = disk
        self.bootchain = bootchain or BootChain(kernel)
        if accel == "auto":
            accel = "kvm" if guest_arch == host_arch else "tcg"
        if accel == "kvm" and guest_arch != host_arch:
            raise BootFailure("KVM requires guest and host architectures to match")
        self.accel = accel
        self.booted = False
        self.wall_seconds = 0.0
        self._function_locals: Dict[str, Dict[str, Any]] = {}
        #: Optional :class:`repro.faults.FaultInjector`; boot paths then
        #: consult the ``emu.disk`` hook site (guard-on-``None``).
        self.faults = None
        self.disk_faults = 0

    #: Emulated cost of one transient disk error: the guest kernel's I/O
    #: retry path (error, re-queue, re-read) before the block succeeds.
    DISK_RETRY_INSTRUCTIONS = 5_000_000

    def _maybe_disk_fault(self) -> float:
        """Transient guest disk error: recovered by retry, costs time."""
        faults = self.faults
        if faults is None or not faults.should_fire("emu.disk"):
            return 0.0
        self.disk_faults += 1
        return self.charge_instructions(self.DISK_RETRY_INSTRUCTIONS)

    @property
    def mips(self) -> float:
        if self.accel == "kvm":
            return KVM_MIPS
        if self.guest_arch == self.host_arch:
            return TCG_SAME_ARCH_MIPS
        return TCG_CROSS_ARCH_MIPS

    def charge_instructions(self, instructions: float) -> float:
        """Advance wall time by the emulated cost; returns seconds."""
        seconds = instructions / (self.mips * 1e6)
        self.wall_seconds += seconds
        return seconds

    # -- lifecycle --------------------------------------------------------------

    def boot(self) -> float:
        """Boot the guest; returns wall seconds spent."""
        self.bootchain.validate()
        # QEMU *can* load modules dynamically, unlike gem5.
        if not self.kernel.supports_containers(dynamic_loading=True):
            missing = self.kernel.missing_for_containers(dynamic_loading=True)
            raise BootFailure(
                "emergency mode: root mounted read-only, missing %s"
                % ", ".join(missing)
            )
        boot_instructions = 95_000_000 + len(self.disk.enabled_services()) * 12_000_000
        seconds = self.charge_instructions(boot_instructions)
        seconds += self._maybe_disk_fault()
        self.booted = True
        return seconds

    def boot_database_container(self, store) -> float:
        """Start a datastore container; returns wall seconds.

        Under cross-arch TCG a JVM store takes *much* longer — the ~17
        minute Cassandra boots the thesis measured versus 30-40 s native.
        """
        self._require_booted()
        profile = store.boot_profile
        instructions = profile.instructions * (1.35 if profile.jvm else 1.0)
        return self.charge_instructions(instructions) + self._maybe_disk_fault()

    def _require_booted(self) -> None:
        if not self.booted:
            raise BootFailure("VM not booted; call boot() first")

    # -- request timing (the Fig 4.20 methodology) -----------------------------------

    def time_request(
        self,
        function: VSwarmFunction,
        payload: Optional[Dict[str, Any]] = None,
        services: Optional[Dict[str, Any]] = None,
        cold: bool = False,
        sequence: int = 1,
    ) -> float:
        """Run one request functionally; returns elapsed nanoseconds.

        The handler executes for real against its services; elapsed time
        is the metered work divided by the VM's execution rate.
        """
        self._require_booted()
        services = services or {}
        payload = payload or function.default_payload(sequence)
        record = InvocationRecord(
            function=function.name,
            runtime=function.runtime_name,
            cold=cold,
            request_bytes=encoded_size(payload),
            sequence=sequence,
        )
        local = self._function_locals.get(function.name)
        if cold or local is None:
            local = {}
            self._function_locals[function.name] = local
        context = InvocationContext(record, services, local)
        for service in services.values():
            if hasattr(service, "take_receipt"):
                service.take_receipt()
        record.result = function.handler(payload, context)
        for name, service in services.items():
            if hasattr(service, "take_receipt"):
                record.attach_receipt(name, service.take_receipt())
        record.response_bytes = encoded_size(record.result)

        instructions = self._request_instructions(function, record, services)
        seconds = self.charge_instructions(instructions)
        return seconds * 1e9

    def _request_instructions(self, function: VSwarmFunction,
                              record: InvocationRecord,
                              services: Dict[str, Any]) -> float:
        runtime = function.runtime
        instructions = float(runtime.request_overhead_instructions)
        if record.cold:
            instructions += runtime.init_instructions * function.init_factor
            if runtime.jit:
                instructions += runtime.jit_compile_instructions
            if any(hasattr(service, "boot_profile") for service in services.values()):
                instructions += _DB_CONNECT_INSTRS
        for name, receipt in record.receipts.items():
            costs = SERVICE_COSTS.get(name, _DEFAULT_SERVICE_COST)
            instructions += (
                receipt.ops * costs["op"]
                + receipt.rows_scanned * costs["row_scanned"]
                + receipt.rows_returned * costs["row_returned"]
                + receipt.total_bytes() * costs["byte"]
                + (receipt.index_probes + receipt.structure_misses) * costs["probe"]
                + receipt.cpu_work * costs["cpu"]
            )
        instructions += (record.request_bytes + record.response_bytes) \
            * _SERIALIZE_INSTRS_PER_BYTE
        return instructions

    def __repr__(self) -> str:
        return "QemuVM(%s on %s, %s, %.0f MIPS)" % (
            self.guest_arch, self.host_arch, self.accel, self.mips,
        )


def make_dev_vm(guest_arch: str, host_arch: str = "x86") -> QemuVM:
    """The thesis's development platform: Jammy guest, OpenSBI on RISC-V."""
    from repro.emu.bootchain import OPENSBI
    from repro.emu.kernel import build_gem5_kernel

    kernel = build_gem5_kernel(guest_arch)
    disk = DiskImage("dev-%s" % guest_arch, guest_arch)
    bootchain = BootChain(kernel, OPENSBI if guest_arch == "riscv" else None)
    return QemuVM(guest_arch, kernel, disk, bootchain, host_arch=host_arch)
