"""Boot chains: the firmware stage before the kernel.

On x86 the boot stages the thesis cared about are folded into the kernel
image; full-system RISC-V simulation additionally needs the OpenSBI
runtime firmware passed explicitly to gem5 (§3.4.2.3) — forgetting it is
one of the configured failure modes here.
"""

from __future__ import annotations

from typing import Optional

from repro.emu.kernel import BootFailure, KernelImage


class Bootloader:
    """A firmware artifact (OpenSBI and friends)."""

    def __init__(self, name: str, arch: str, size_bytes: int):
        self.name = name
        self.arch = arch
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return "Bootloader(%s/%s)" % (self.name, self.arch)


#: The OpenSBI fw_jump binary QEMU ships and gem5 must be handed.
OPENSBI = Bootloader("opensbi-fw_jump", "riscv", 262144)


class BootChain:
    """Validates that a (bootloader, kernel) pair can start a platform."""

    def __init__(self, kernel: KernelImage, bootloader: Optional[Bootloader] = None):
        self.kernel = kernel
        self.bootloader = bootloader

    def validate(self) -> None:
        """Raise :class:`BootFailure` if the chain cannot boot."""
        if self.kernel.arch == "riscv":
            if self.bootloader is None:
                raise BootFailure(
                    "RISC-V full-system boot needs an SBI bootloader "
                    "(pass the OpenSBI binary, as the thesis had to for gem5)"
                )
            if self.bootloader.arch != "riscv":
                raise BootFailure(
                    "bootloader %s is for %s, not riscv"
                    % (self.bootloader.name, self.bootloader.arch)
                )
        elif self.bootloader is not None and self.bootloader.arch != self.kernel.arch:
            raise BootFailure("bootloader/kernel architecture mismatch")

    @property
    def stages(self) -> list:
        names = []
        if self.kernel.arch == "riscv" and self.bootloader is not None:
            names.append(self.bootloader.name)
        names.append("linux-%s" % self.kernel.version)
        return names

    def __repr__(self) -> str:
        return "BootChain(%s)" % " -> ".join(self.stages)
