"""Disk images (the qemu-img workflow).

The experiment's first step (§4.1.2.1) prepares an Ubuntu server disk
image under QEMU: enlarge it, install Docker and dependencies, pull the
benchmark containers, disable unneeded services, shut down.  The same
image then boots under gem5.
"""

from __future__ import annotations

from typing import Dict, List

from repro.serverless.container import ContainerImage

GB = 1024 ** 3
MB = 1024 ** 2


class DiskImage:
    """A qcow2-style disk image with packages, services and containers."""

    #: Base Ubuntu preinstalled-server payload.
    BASE_PAYLOAD_BYTES = int(1.3 * GB)

    def __init__(self, name: str, arch: str, size_bytes: int = 4 * GB,
                 distro: str = "ubuntu-22.04-jammy"):
        if size_bytes < self.BASE_PAYLOAD_BYTES:
            raise ValueError("disk too small for the base system")
        self.name = name
        self.arch = arch
        self.size_bytes = size_bytes
        self.distro = distro
        self.packages: List[str] = ["openssh-server", "systemd", "apt"]
        self.services_enabled: Dict[str, bool] = {
            "ssh": True, "snapd": True, "unattended-upgrades": True,
            "cloud-init": True,
        }
        self.container_images: Dict[str, ContainerImage] = {}
        self.used_bytes = self.BASE_PAYLOAD_BYTES

    # -- qemu-img style operations ------------------------------------------------

    def resize(self, new_size_bytes: int) -> None:
        """qemu-img resize: grow only (shrinking risks the filesystem)."""
        if new_size_bytes < self.size_bytes:
            raise ValueError("refusing to shrink a disk image")
        self.size_bytes = new_size_bytes

    def convert(self, new_name: str) -> "DiskImage":
        """qemu-img convert: a deep copy under a new name."""
        clone = DiskImage(new_name, self.arch, self.size_bytes, self.distro)
        clone.packages = list(self.packages)
        clone.services_enabled = dict(self.services_enabled)
        clone.container_images = dict(self.container_images)
        clone.used_bytes = self.used_bytes
        return clone

    # -- provisioning ---------------------------------------------------------------

    def install_package(self, name: str, size_bytes: int = 20 * MB) -> None:
        if name in self.packages:
            return
        self._charge(size_bytes)
        self.packages.append(name)

    def store_container_image(self, image: ContainerImage) -> None:
        if image.arch != self.arch:
            raise ValueError(
                "cannot store %s image on a %s disk" % (image.arch, self.arch)
            )
        # On-disk (uncompressed) layers are roughly 2.5x the compressed size.
        self._charge(int(image.compressed_size_bytes * 2.5))
        self.container_images[image.name] = image

    def disable_service(self, name: str) -> None:
        """Speeds up the gem5 boot, as the thesis did before shutdown."""
        if name in self.services_enabled:
            self.services_enabled[name] = False

    def enabled_services(self) -> List[str]:
        return sorted(name for name, on in self.services_enabled.items() if on)

    def _charge(self, amount: int) -> None:
        if self.used_bytes + amount > self.size_bytes:
            raise IOError(
                "no space left on device: need %d more bytes on %s "
                "(qemu-img resize it first, as §3.2 does)"
                % (self.used_bytes + amount - self.size_bytes, self.name)
            )
        self.used_bytes += amount

    @property
    def free_bytes(self) -> int:
        return self.size_bytes - self.used_bytes

    def __repr__(self) -> str:
        return "DiskImage(%s/%s, %.1f/%.1fGB, %d containers)" % (
            self.name, self.arch, self.used_bytes / GB, self.size_bytes / GB,
            len(self.container_images),
        )
