"""Host timing backend: real wall-clock measurement of the handlers.

The thesis's remaining future-work item is "run the ported serverless
workloads and measure their performance on real RISC-V platforms".  We
cannot supply RISC-V silicon, but the handlers are real code — so this
backend runs them on the *host* interpreter and measures genuine wall
time with ``perf_counter``, giving a non-simulated reference for the
functional layer (useful for spotting handlers whose Python cost has
drifted far from their modelled cost).

Wall-clock numbers are inherently noisy and machine-dependent: this
backend reports medians over repetitions and is excluded from the
deterministic reproduction path.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List, Optional

from repro.db.engine import encoded_size
from repro.serverless.faas import InvocationContext, InvocationRecord


class HostSample:
    """Wall-clock timings for one function on the host."""

    def __init__(self, function: str, cold_ns: float, warm_ns: List[float]):
        self.function = function
        self.cold_ns = cold_ns
        self.warm_ns = warm_ns

    @property
    def warm_median_ns(self) -> float:
        return statistics.median(self.warm_ns)

    def __repr__(self) -> str:
        return "HostSample(%s: cold=%.0fns, warm~%.0fns)" % (
            self.function, self.cold_ns, self.warm_median_ns,
        )


class HostPlatform:
    """Runs handlers natively and times them."""

    def __init__(self, repetitions: int = 5):
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        self.repetitions = repetitions

    def _invoke(self, function, payload: Dict[str, Any],
                services: Dict[str, Any], local: Dict[str, Any],
                sequence: int, cold: bool) -> float:
        record = InvocationRecord(function.name, function.runtime_name,
                                  cold, encoded_size(payload), sequence)
        context = InvocationContext(record, services, local)
        start = time.perf_counter()
        function.handler(payload, context)
        return (time.perf_counter() - start) * 1e9

    def time_function(self, function, payload: Optional[Dict[str, Any]] = None,
                      services: Optional[Dict[str, Any]] = None) -> HostSample:
        """Cold (fresh in-process state) then warm repetitions."""
        services = services or {}
        payload = payload if payload is not None else function.default_payload()
        local: Dict[str, Any] = {}
        cold_ns = self._invoke(function, payload, services, local, 1, True)
        warm_ns = [
            self._invoke(function, payload, services, local, 2 + index, False)
            for index in range(self.repetitions)
        ]
        return HostSample(function.name, cold_ns, warm_ns)

    def compare(self, functions, services_for=None) -> Dict[str, HostSample]:
        samples = {}
        for function in functions:
            services = services_for(function) if services_for else {}
            samples[function.name] = self.time_function(function,
                                                        services=services)
        return samples
