"""Linux kernel configuration and build model.

Reproduces the thesis's hardest-won lesson (§3.4.2.2, §3.5.2.2): gem5
cannot load kernel modules dynamically, so a usable simulation kernel
must be built from a defconfig plus the Docker check-config flags with
``mod2yes`` (every module compiled in); booting a container-capable disk
image on a kernel missing those features drops to emergency mode with a
read-only root.  On x86, the defconfig path additionally lacked the IDE
driver the init service needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.serverless.engine import REQUIRED_KERNEL_FEATURES

#: Options every defconfig starts with, per arch.
_DEFCONFIG_BASE = {
    "riscv": {"CONFIG_RISCV", "CONFIG_MMU", "CONFIG_SERIAL_8250", "CONFIG_EXT4_FS"},
    "x86": {"CONFIG_X86_64", "CONFIG_MMU", "CONFIG_SERIAL_8250", "CONFIG_EXT4_FS"},
}

#: The x86 disk controller the thesis's defconfig builds were missing.
X86_IDE_DRIVER = "CONFIG_ATA_PIIX"

#: NodeJS on Jammy needs a kernel with modern enough vsyscall/ptrace
#: support; the thesis never got Node running on its x86 gem5 kernels.
NODEJS_SUPPORT_FLAG = "CONFIG_X86_VSYSCALL_EMULATION"

KNOWN_VERSIONS = ("5.15.59", "6.5.5")


class BootFailure(RuntimeError):
    """The kernel could not bring the system up as requested."""


class KernelConfig:
    """A mutable kernel .config."""

    def __init__(self, arch: str, version: str = "5.15.59",
                 options: Optional[Set[str]] = None):
        if arch not in _DEFCONFIG_BASE:
            raise ValueError("unsupported arch %r" % arch)
        if version not in KNOWN_VERSIONS:
            raise ValueError("unknown kernel version %r (have %s)"
                             % (version, KNOWN_VERSIONS))
        self.arch = arch
        self.version = version
        self.options: Set[str] = set(options or ())
        self.modules: Set[str] = set()  # =m options

    @classmethod
    def defconfig(cls, arch: str, version: str = "5.15.59") -> "KernelConfig":
        """The arch default config — NOT container-capable by itself."""
        config = cls(arch, version)
        config.options |= _DEFCONFIG_BASE[arch]
        if arch == "x86":
            # The thesis's defconfig x86 kernels hung in init for want of
            # the IDE driver; model that by leaving it out here.
            config.options.discard(X86_IDE_DRIVER)
        return config

    def enable(self, option: str, as_module: bool = False) -> None:
        if as_module:
            self.modules.add(option)
        else:
            self.options.add(option)

    def apply_docker_flags(self) -> None:
        """The check-config.sh flags (§3.2.2) — added as modules, which is
        what a distro kernel does and exactly what gem5 cannot load."""
        for feature in REQUIRED_KERNEL_FEATURES:
            self.enable(feature, as_module=True)

    def mod2yes(self) -> None:
        """Build every module into the kernel (the thesis's fix)."""
        self.options |= self.modules
        self.modules.clear()

    def builtin_features(self) -> Set[str]:
        return set(self.options)

    def __repr__(self) -> str:
        return "KernelConfig(%s %s: %d=y, %d=m)" % (
            self.arch, self.version, len(self.options), len(self.modules),
        )


class KernelImage:
    """A built kernel: immutable feature set plus image size."""

    #: Rough image bytes per built-in option (drives the 1 GB blow-up the
    #: thesis saw when building *everything* in, §3.4.2.2).
    BYTES_PER_OPTION = 600 * 1024
    BASE_BYTES = 8 * 1024 * 1024

    def __init__(self, config: KernelConfig):
        self.arch = config.arch
        self.version = config.version
        self.builtin = frozenset(config.options)
        self.loadable_modules = frozenset(config.modules)
        self.size_bytes = self.BASE_BYTES + len(self.builtin) * self.BYTES_PER_OPTION

    def features_available(self, dynamic_loading: bool) -> Set[str]:
        """Features usable on a platform; gem5 has no module loading."""
        if dynamic_loading:
            return set(self.builtin) | set(self.loadable_modules)
        return set(self.builtin)

    def supports_containers(self, dynamic_loading: bool) -> bool:
        available = self.features_available(dynamic_loading)
        return all(feature in available for feature in REQUIRED_KERNEL_FEATURES)

    def missing_for_containers(self, dynamic_loading: bool) -> List[str]:
        available = self.features_available(dynamic_loading)
        return sorted(set(REQUIRED_KERNEL_FEATURES) - available)

    def __repr__(self) -> str:
        return "KernelImage(%s %s, %.1fMB)" % (
            self.arch, self.version, self.size_bytes / (1024 * 1024),
        )


class KernelBuild:
    """Builds kernel images from configs (the make step)."""

    def __init__(self, compiler: str = "gcc"):
        self.compiler = compiler
        self.builds = 0

    def build(self, config: KernelConfig) -> KernelImage:
        if config.arch == "riscv" and "riscv" not in self.compiler and \
                self.compiler != "gcc":
            raise BootFailure(
                "cross-compiling riscv kernels needs the riscv64 toolchain, "
                "got %r" % self.compiler
            )
        self.builds += 1
        return KernelImage(config)


def build_gem5_kernel(arch: str, version: str = "5.15.59") -> KernelImage:
    """The thesis's successful recipe: defconfig + docker flags + mod2yes
    (+ the IDE driver on x86)."""
    config = KernelConfig.defconfig(arch, version)
    config.apply_docker_flags()
    if arch == "x86":
        config.enable(X86_IDE_DRIVER)
    config.mod2yes()
    if arch == "x86":
        # Despite countless attempts the thesis never produced an x86
        # gem5 kernel that ran NodeJS (§3.5.2.2); the support stays a
        # loadable module, which gem5 cannot use.
        config.enable(NODEJS_SUPPORT_FLAG, as_module=True)
    return KernelBuild().build(config)
