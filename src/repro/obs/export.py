"""Trace exporters: Chrome ``trace_event`` JSON and a flat profile table.

The Chrome format (the JSON array flavour with ``traceEvents``) loads
directly in Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
Serialization is canonical — sorted keys, fixed separators, a trailing
newline — so two identical captures serialize to byte-identical files;
the determinism tests compare raw bytes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.obs.tracer import TRACK_NAMES, Tracer

#: Chrome trace pid for everything we emit (single simulated process).
TRACE_PID = 1


def _capture_of(trace) -> Dict[str, Any]:
    """Accept a live :class:`Tracer` or an already-frozen capture dict."""
    if isinstance(trace, Tracer):
        return trace.freeze()
    if isinstance(trace, dict) and "events" in trace:
        return trace
    raise TypeError("expected a Tracer or a frozen capture, got %r"
                    % type(trace).__name__)


def chrome_trace(trace, process_name: str = "repro-sim") -> Dict[str, Any]:
    """Render a capture as a Chrome ``trace_event`` document (a dict)."""
    capture = _capture_of(trace)
    events: List[Dict[str, Any]] = [{
        "args": {"name": process_name},
        "name": "process_name",
        "ph": "M",
        "pid": TRACE_PID,
        "tid": 0,
        "ts": 0,
    }]
    used_tracks = sorted({event[3] for event in capture["events"]})
    for track in used_tracks:
        events.append({
            "args": {"name": TRACK_NAMES.get(track, "track%d" % track)},
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": track,
            "ts": 0,
        })
    for ph, name, cat, track, ts, dur, args in capture["events"]:
        entry: Dict[str, Any] = {
            "cat": cat,
            "name": name,
            "ph": ph,
            "pid": TRACE_PID,
            "tid": track,
            "ts": ts,
        }
        if ph == "X":
            entry["dur"] = dur
        elif ph == "I":
            entry["s"] = "t"
        if args:
            entry["args"] = args
        events.append(entry)
    return {
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": capture["clock"],
            "counters": capture["counters"],
            "schema": capture["schema"],
        },
        "traceEvents": events,
    }


def dumps_chrome_trace(trace, process_name: str = "repro-sim") -> str:
    """Canonical (byte-deterministic) serialization of a capture."""
    document = chrome_trace(trace, process_name=process_name)
    return json.dumps(document, indent=1, sort_keys=True,
                      separators=(",", ": ")) + "\n"


def write_chrome_trace(trace, path, process_name: str = "repro-sim") -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dumps_chrome_trace(trace, process_name=process_name))
    return target


def profile_table(trace) -> str:
    """Flat per-phase profile: span ticks aggregated by (category, name).

    Complete spans with the same category and name merge into one row
    (count, total ticks, share of the capture's clock).  Rows order by
    category then descending ticks, so the expensive phases lead.
    """
    capture = _capture_of(trace)
    totals: Dict[Tuple[str, str], List[int]] = {}
    for ph, name, cat, _track, _ts, dur, _args in capture["events"]:
        if ph != "X":
            continue
        row = totals.setdefault((cat, name), [0, 0])
        row[0] += 1
        row[1] += dur
    clock = capture["clock"] or 1
    lines = ["%-14s %-38s %7s %12s %7s" % ("category", "phase", "count",
                                           "ticks", "share")]
    ordered = sorted(totals.items(), key=lambda item: (item[0][0],
                                                       -item[1][1],
                                                       item[0][1]))
    for (cat, name), (count, ticks) in ordered:
        lines.append("%-14s %-38s %7d %12d %6.1f%%" % (
            cat, name[:38], count, ticks, 100.0 * ticks / clock))
    if len(lines) == 1:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
