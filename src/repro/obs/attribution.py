"""Miss-cause attribution: cold / capacity / conflict, per cache.

The classic Hill taxonomy, implemented with a *shadow fully-associative
filter* per cache:

* **cold** — the line has never been referenced before (tracked by a
  first-touch set);
* **conflict** — the miss would have been a hit in a fully-associative
  cache of the same total capacity (the shadow LRU still holds the
  line), so set-index contention — not capacity — evicted it;
* **capacity** — the fully-associative shadow evicted it too: the
  working set simply exceeds the cache.

The shadow filter observes the demand stream through the cache's
profiler hooks (hits refresh recency, misses classify-then-insert).
Profilers are plain counters — they never touch the tracer clock or
record events themselves — so attaching them cannot perturb trace
timestamps; the harness snapshots them around each measured request and
emits the deltas as cache spans.
"""

from __future__ import annotations

from typing import Dict, Set


class MissClassifier:
    """Shadow fully-associative LRU filter for one cache's line stream."""

    __slots__ = ("capacity", "_seen", "_lru", "cold", "capacity_misses",
                 "conflict")

    def __init__(self, capacity_lines: int):
        if capacity_lines < 1:
            raise ValueError("shadow filter needs at least one line")
        self.capacity = capacity_lines
        self._seen: Set[int] = set()
        self._lru: Dict[int, None] = {}  # insertion order == recency order
        self.cold = 0
        self.capacity_misses = 0
        self.conflict = 0

    def on_hit(self, line: int) -> None:
        """A demand hit in the real cache: refresh shadow recency."""
        lru = self._lru
        if line in lru:
            del lru[line]
        elif len(lru) >= self.capacity:
            # Resident in the real cache but already shadow-evicted:
            # re-admitting it must not push the shadow over capacity.
            del lru[next(iter(lru))]
        lru[line] = None

    def on_miss(self, line: int) -> str:
        """Classify a demand miss; returns 'cold'/'conflict'/'capacity'."""
        lru = self._lru
        if line not in self._seen:
            self._seen.add(line)
            cause = "cold"
            self.cold += 1
        elif line in lru:
            del lru[line]
            cause = "conflict"
            self.conflict += 1
        else:
            cause = "capacity"
            self.capacity_misses += 1
        if len(lru) >= self.capacity:
            del lru[next(iter(lru))]
        lru[line] = None
        return cause

    def as_dict(self) -> Dict[str, int]:
        return {
            "cold": self.cold,
            "capacity": self.capacity_misses,
            "conflict": self.conflict,
        }

    def __repr__(self) -> str:
        return "MissClassifier(cap=%d, cold=%d, capacity=%d, conflict=%d)" % (
            self.capacity, self.cold, self.capacity_misses, self.conflict,
        )


class CacheProfiler:
    """Per-cache profiling state hung off ``Cache.profiler``.

    The cache's access path calls :meth:`on_hit` / :meth:`on_miss` only
    when a profiler is attached; counters here are cumulative and the
    harness reads request-level deltas via :meth:`snapshot`.
    """

    __slots__ = ("name", "classifier", "demand_hits", "demand_misses")

    def __init__(self, name: str, capacity_lines: int):
        self.name = name
        self.classifier = MissClassifier(capacity_lines)
        self.demand_hits = 0
        self.demand_misses = 0

    @classmethod
    def for_cache(cls, cache) -> "CacheProfiler":
        """Build a profiler shaped to a :class:`repro.sim.mem.cache.Cache`."""
        return cls(cache.name, cache.num_sets * cache.assoc)

    def on_hit(self, line: int) -> None:
        self.demand_hits += 1
        self.classifier.on_hit(line)

    def on_miss(self, line: int) -> str:
        self.demand_misses += 1
        return self.classifier.on_miss(line)

    def snapshot(self) -> Dict[str, int]:
        """Cumulative counters (cause breakdown included)."""
        out = {"hits": self.demand_hits, "misses": self.demand_misses}
        out.update(self.classifier.as_dict())
        return out

    def __repr__(self) -> str:
        return "CacheProfiler(%s: %d misses)" % (self.name, self.demand_misses)


class TlbProfiler:
    """Per-TLB profiling state hung off ``Tlb.profiler``."""

    __slots__ = ("name", "misses", "walks")

    def __init__(self, name: str):
        self.name = name
        self.misses = 0
        self.walks = 0

    def on_miss(self, page: int) -> None:
        self.misses += 1

    def on_walk(self, directory: int) -> None:
        self.walks += 1

    def snapshot(self) -> Dict[str, int]:
        return {"misses": self.misses, "walks": self.walks}

    def __repr__(self) -> str:
        return "TlbProfiler(%s: %d misses, %d walks)" % (
            self.name, self.misses, self.walks,
        )


def snapshot_delta(now: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    """Per-request view: counter movement between two snapshots."""
    return {key: now[key] - before.get(key, 0) for key in now}
