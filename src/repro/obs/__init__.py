"""repro.obs — the unified observability layer.

A low-overhead span/event tracer (:class:`Tracer`) stamped from
deterministic logical ticks, miss-cause attribution via shadow
fully-associative filters (:class:`CacheProfiler`, :class:`TlbProfiler`),
and exporters for Chrome ``trace_event`` JSON (Perfetto-loadable) plus a
flat per-phase profile table.

Instrumentation hooks live in the simulator (event queue dispatch, the
O3 pipeline's fetch/dispatch/issue/commit phases, cache and TLB misses)
and the serverless stack (invocation lifecycle, container engine state
transitions); every hook is a no-op when no tracer is attached.  Entry
points:

* ``ExperimentHarness(..., tracer=Tracer())`` — trace a measurement;
* ``MeasurementSpec(..., trace=True)`` — capture traces through the
  parallel measurement engine (one capture per task);
* ``python -m repro trace <function> --isa <isa> --out trace.json``.
"""

from repro.obs.attribution import (
    CacheProfiler,
    MissClassifier,
    TlbProfiler,
    snapshot_delta,
)
from repro.obs.export import (
    chrome_trace,
    dumps_chrome_trace,
    profile_table,
    write_chrome_trace,
)
from repro.obs.tracer import (
    CAPTURE_SCHEMA,
    TRACK_CACHE,
    TRACK_COMMIT,
    TRACK_DISPATCH,
    TRACK_ENGINE,
    TRACK_EVENTQ,
    TRACK_FAULTS,
    TRACK_FETCH,
    TRACK_INVOCATION,
    TRACK_ISSUE,
    TRACK_NAMES,
    TRACK_PIPELINE,
    TRACK_SCALING,
    TRACK_TLB,
    Span,
    Tracer,
)

__all__ = [
    "CAPTURE_SCHEMA",
    "CacheProfiler",
    "MissClassifier",
    "Span",
    "TlbProfiler",
    "TRACK_CACHE",
    "TRACK_COMMIT",
    "TRACK_DISPATCH",
    "TRACK_ENGINE",
    "TRACK_EVENTQ",
    "TRACK_FAULTS",
    "TRACK_FETCH",
    "TRACK_INVOCATION",
    "TRACK_ISSUE",
    "TRACK_NAMES",
    "TRACK_PIPELINE",
    "TRACK_SCALING",
    "TRACK_TLB",
    "Tracer",
    "chrome_trace",
    "dumps_chrome_trace",
    "profile_table",
    "snapshot_delta",
    "write_chrome_trace",
]
