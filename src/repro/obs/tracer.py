"""Low-overhead span/event tracer for the simulator and serverless stack.

The observability layer answers *where the cycles go* inside a cold
start — fetch stalls, L2 cold misses, container boot — the per-phase
visibility the thesis's end-of-run aggregates cannot give.  Design
constraints, in order:

1. **No-op when disabled.**  Components hold a ``tracer``/``profiler``
   attribute that defaults to ``None``; every hook site guards with an
   ``is not None`` check (the O3 core goes further and runs a separate,
   untouched fast loop).  With tracing off, no span objects, no event
   tuples, no allocations happen — asserted by the tier-1 suite via
   :data:`EVENTS_RECORDED` deltas.
2. **Deterministic timestamps.**  Spans are stamped from a *logical tick
   clock* owned by the tracer and advanced only by deterministic
   quantities — simulated cycles, functional instruction counts, fixed
   container-engine operation costs — never wall clock.  Two runs of the
   same configuration therefore produce byte-identical trace files.
3. **Cheap to record.**  Events are appended as plain tuples; rendering
   to Chrome ``trace_event`` JSON or a profile table happens once, at
   export time (:mod:`repro.obs.export`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

#: Track (Chrome ``tid``) assignment: one lane per subsystem/phase so
#: spans that overlap in time render side by side instead of nesting.
TRACK_INVOCATION = 1
TRACK_ENGINE = 2
TRACK_PIPELINE = 3
TRACK_FETCH = 4
TRACK_DISPATCH = 5
TRACK_ISSUE = 6
TRACK_COMMIT = 7
TRACK_CACHE = 8
TRACK_TLB = 9
TRACK_EVENTQ = 10
TRACK_FAULTS = 11
TRACK_SCALING = 12

#: Human names for the tracks, emitted as ``thread_name`` metadata.
TRACK_NAMES = {
    TRACK_INVOCATION: "invocation",
    TRACK_ENGINE: "container-engine",
    TRACK_PIPELINE: "pipeline",
    TRACK_FETCH: "pipeline/fetch",
    TRACK_DISPATCH: "pipeline/dispatch",
    TRACK_ISSUE: "pipeline/issue",
    TRACK_COMMIT: "pipeline/commit",
    TRACK_CACHE: "cache",
    TRACK_TLB: "tlb",
    TRACK_EVENTQ: "eventq",
    TRACK_FAULTS: "faults",
    TRACK_SCALING: "scaling",
}

#: Module-global count of events ever recorded by any tracer.  The
#: zero-overhead regression test measures a tracing-disabled run and
#: asserts this counter does not move — proof the fast path allocated
#: and recorded nothing.
EVENTS_RECORDED = 0

#: The trace-capture schema version (stored in frozen captures).
CAPTURE_SCHEMA = "repro-trace/1"


class Span:
    """A named interval on one track, in logical ticks.

    Returned by :meth:`Tracer.span`; closed spans are stored as plain
    tuples, so this object only lives while the region is open.
    """

    __slots__ = ("name", "cat", "track", "ts", "args")

    def __init__(self, name: str, cat: str, track: int, ts: int,
                 args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.cat = cat
        self.track = track
        self.ts = ts
        self.args = args

    def __repr__(self) -> str:
        return "Span(%s/%s @ %d)" % (self.cat, self.name, self.ts)


class Tracer:
    """Collects spans, instants and counter samples on a logical clock.

    Event storage is a list of tuples ``(ph, name, cat, track, ts, dur,
    args)`` where ``ph`` follows the Chrome trace_event phase letters:
    ``"X"`` complete span, ``"I"`` instant, ``"C"`` counter sample.
    """

    __slots__ = ("events", "counters", "_now")

    def __init__(self):
        self.events: List[Tuple] = []
        self.counters: Dict[str, float] = {}
        self._now = 0

    # -- the logical clock -------------------------------------------------

    @property
    def now(self) -> int:
        """Current logical tick (monotone, deterministic)."""
        return self._now

    def advance(self, ticks: int) -> int:
        """Move the clock forward by a deterministic tick count."""
        if ticks < 0:
            raise ValueError("cannot advance the clock backwards: %d" % ticks)
        self._now += ticks
        return self._now

    # -- event recording ---------------------------------------------------

    def _record(self, event: Tuple) -> None:
        global EVENTS_RECORDED
        EVENTS_RECORDED += 1
        self.events.append(event)

    def complete(self, name: str, cat: str, ts: int, dur: int,
                 track: int = TRACK_INVOCATION,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a closed span [ts, ts+dur) on ``track``."""
        self._record(("X", name, cat, track, ts, dur, args))

    def instant(self, name: str, cat: str, ts: int,
                track: int = TRACK_INVOCATION,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event at ``ts``."""
        self._record(("I", name, cat, track, ts, 0, args))

    def counter(self, name: str, ts: int, values: Dict[str, Any],
                track: int = TRACK_PIPELINE) -> None:
        """Record a counter sample (rendered as a Chrome counter track)."""
        self._record(("C", name, "counter", track, ts, 0, values))

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a named scalar (exported in the capture, not the timeline)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    @contextmanager
    def span(self, name: str, cat: str, track: int = TRACK_INVOCATION,
             args: Optional[Dict[str, Any]] = None):
        """Context manager: spans the clock interval of the body."""
        open_span = Span(name, cat, track, self._now, args)
        try:
            yield open_span
        finally:
            dur = self._now - open_span.ts
            self.complete(open_span.name, open_span.cat, open_span.ts,
                          dur if dur > 0 else 1, open_span.track,
                          open_span.args)

    # -- capture -----------------------------------------------------------

    def freeze(self) -> Dict[str, Any]:
        """A picklable/JSON-ready snapshot of everything recorded.

        The capture is what crosses process boundaries when traced
        measurements fan out through :mod:`repro.core.parallel`, and
        what the exporters consume.
        """
        return {
            "schema": CAPTURE_SCHEMA,
            "clock": self._now,
            "events": [list(event) for event in self.events],
            "counters": dict(self.counters),
        }

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return "Tracer(%d events, now=%d)" % (len(self.events), self._now)
