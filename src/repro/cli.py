"""Command-line interface: drive experiments without writing code.

::

    python -m repro list
    python -m repro measure fibonacci-go --isa riscv
    python -m repro compare aes-python --isas riscv,x86
    python -m repro suite hotel --isa riscv --db cassandra
    python -m repro trace fibonacci --isa riscv64 --out trace.json
    python -m repro chaos fibonacci-go --isa riscv --fault-seed 7
    python -m repro serve fibonacci --profile burst --rps 100
    python -m repro sizes --arch riscv
    python -m repro dse fibonacci-python --axis l2_size=131072,524288
    python -m repro dbcompare
    python -m repro experiment run perf-cost
    python -m repro cache stats
    python -m repro bench-smoke --json

Batch commands (suite, dse, reproduce, bench-smoke) schedule through the
parallel measurement engine: ``--jobs``/``REPRO_JOBS`` picks the worker
count and the persistent result cache (``REPRO_CACHE_DIR``) skips
already-measured points unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.core.dse import DesignSpace
from repro.core.harness import ExperimentHarness
from repro.core.results import cold_warm_table, isa_comparison_table
from repro.core.scale import SimScale
from repro.workloads.catalog import (
    HOTEL_FUNCTIONS,
    ONLINESHOP_FUNCTIONS,
    STANDALONE_FUNCTIONS,
    all_functions,
    get_function,
)

SUITES = {
    "standalone": STANDALONE_FUNCTIONS,
    "onlineshop": ONLINESHOP_FUNCTIONS,
    "hotel": HOTEL_FUNCTIONS,
}


#: Common vendor spellings accepted anywhere an ISA is taken.
_ISA_SPELLINGS = {
    "riscv": "riscv", "riscv64": "riscv", "rv64": "riscv", "rv64gc": "riscv",
    "x86": "x86", "x86_64": "x86", "amd64": "x86",
    "arm": "arm", "arm64": "arm", "aarch64": "arm",
}


def _normalize_isa(value: str) -> str:
    """argparse type: fold riscv64/rv64, x86_64/amd64, aarch64 spellings."""
    try:
        return _ISA_SPELLINGS[value.strip().lower()]
    except KeyError:
        raise argparse.ArgumentTypeError(
            "unknown ISA %r (try riscv, x86 or arm)" % value) from None


def _resolve_function(name: str):
    """Catalog lookup that also accepts runtime-less names: ``fibonacci``
    resolves to ``fibonacci-python`` (python, then go, then nodejs)."""
    try:
        return get_function(name)
    except KeyError:
        for suffix in ("-python", "-go", "-nodejs"):
            try:
                return get_function(name + suffix)
            except KeyError:
                continue
        raise SystemExit("no benchmark function %r (see `python -m repro list`)"
                         % name)


def _scale_from(args) -> SimScale:
    return SimScale(time=args.time_scale, space=args.space_scale)


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--time-scale", type=int, default=512,
                        help="dynamic-work divisor (default 512)")
    parser.add_argument("--space-scale", type=int, default=16,
                        help="capacity divisor (default 16)")


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="measurement workers (default REPRO_JOBS or all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result cache")


def _cache_from(args):
    # False disables caching; None lets the engine honour the environment.
    return False if getattr(args, "no_cache", False) else None


def _add_sampling_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sampling", default=None, metavar="SPEC",
        help="sampled O3 simulation: a preset (fast/balanced/accurate), "
             "key=value pairs (interval=8192,detail=1024,warmup=256,"
             "jitter=1), or off (default: off, full detail)")


def _sampling_from(args):
    from repro.sim.sampling import SamplingConfig

    try:
        return SamplingConfig.parse(getattr(args, "sampling", None))
    except ValueError as error:
        raise SystemExit(str(error))


def _add_vector_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vector", default=None, metavar="SPEC",
        help="vector unit: a preset (rvv128/rvv256/rvv512), key=value "
             "pairs (vlen=256,lanes=2), or off (default: off — vector IR "
             "lowers to scalar instructions)")


def _vector_from(args):
    from repro.sim.isa.vector import VectorConfig

    try:
        return VectorConfig.parse(getattr(args, "vector", None))
    except ValueError as error:
        raise SystemExit(str(error))


def _hotel_services(db_name: str):
    from repro.db import make_datastore
    from repro.workloads.hotel import HotelSuite

    suite = HotelSuite(make_datastore(db_name))
    return suite


def _services_for(function, hotel_suite) -> Dict[str, Any]:
    if function.suite == "hotel":
        if hotel_suite is None:
            raise SystemExit(
                "%s needs a database; pass --db (cassandra/mongodb/...)"
                % function.name
            )
        return hotel_suite.services_for(function)
    return {}


def _format_stats(label: str, stats) -> str:
    return (
        "%-18s %10d cycles  %9d insts  CPI %.2f  "
        "L1I %5d  L1D %5d  L2 %5d" % (
            label, stats.cycles, stats.instructions, stats.cpi,
            stats.l1i_misses, stats.l1d_misses, stats.l2_misses,
        )
    )


def cmd_list(args) -> int:
    """Print the benchmark catalog."""
    from repro.workloads.catalog import ML_FUNCTIONS

    print("%-30s %-8s %-12s" % ("function", "runtime", "suite"))
    for function in all_functions() + ML_FUNCTIONS:
        print("%-30s %-8s %-12s" % (function.name, function.runtime_name,
                                    function.suite))
    return 0


def cmd_measure(args) -> int:
    """Run the 10-request protocol for one function."""
    function = get_function(args.function)
    hotel_suite = _hotel_services(args.db) if function.suite == "hotel" else None
    harness = ExperimentHarness(isa=args.isa, scale=_scale_from(args),
                                seed=args.seed,
                                sampling=_sampling_from(args),
                                vector=_vector_from(args))
    measurement = harness.measure_function(
        function, services=_services_for(function, hotel_suite))
    print("%s on simulated %s (%r)" % (function.name, args.isa, harness.config.os_name))
    print(_format_stats("cold (request 1)", measurement.cold))
    print(_format_stats("warm (request 10)", measurement.warm))
    print("cold/warm cycle ratio: %.1fx" % measurement.cold_warm_cycle_ratio)
    return 0


def cmd_compare(args) -> int:
    """Compare one function across ISAs."""
    function = get_function(args.function)
    isas = args.isas.split(",")
    measurements: Dict[str, Dict] = {}
    for isa in isas:
        hotel_suite = _hotel_services(args.db) if function.suite == "hotel" else None
        harness = ExperimentHarness(isa=isa, scale=_scale_from(args), seed=args.seed)
        measurements[isa] = {function.name: harness.measure_function(
            function, services=_services_for(function, hotel_suite))}
    if len(isas) == 2:
        table = isa_comparison_table(
            "%s: %s vs %s (cycles)" % (function.name, *isas),
            measurements[isas[0]], measurements[isas[1]],
            metric=lambda stats: stats.cycles, metric_name="cyc",
        )
        print(table.render())
    else:
        for isa in isas:
            m = measurements[isa][function.name]
            print("%-8s cold=%d warm=%d" % (isa, m.cold.cycles, m.warm.cycles))
    return 0


def cmd_suite(args) -> int:
    """Measure a whole suite on one platform."""
    from repro.core.reproduce import measure
    from repro.core.spec import MeasurementSpec

    functions = SUITES[args.suite]
    spec = MeasurementSpec(
        function=args.suite, isa=args.isa, scale=_scale_from(args),
        seed=args.seed, db=args.db if args.suite == "hotel" else None,
        sampling=_sampling_from(args), vector=_vector_from(args))
    measurements = measure(
        spec, jobs=args.jobs, cache=_cache_from(args),
        progress=lambda message: print(message, file=sys.stderr),
    )
    table = cold_warm_table(
        "%s suite on %s (cycles)" % (args.suite, args.isa), measurements,
        metric=lambda stats: stats.cycles,
        order=[function.name for function in functions],
        metric_name="cycles",
    )
    print(table.render())
    return 0


def cmd_sizes(args) -> int:
    """Print the container compressed-size table."""
    arches = [args.arch] if args.arch else ["x86", "riscv", "arm"]
    print("%-30s %s" % ("function", "  ".join("%10s" % a for a in arches)))
    for function in all_functions():
        sizes = []
        for arch in arches:
            try:
                sizes.append("%8.2fMB" % function.image(arch).compressed_size_mb)
            except (KeyError, LookupError):
                sizes.append("%10s" % "n/a")
        print("%-30s %s" % (function.name, "  ".join(sizes)))
    return 0


def cmd_dse(args) -> int:
    """Run a design-space sweep over --axis specs."""
    function = get_function(args.function)
    space = DesignSpace(isa=args.isa, scale=_scale_from(args))
    for axis_spec in args.axis:
        name, _sep, values_text = axis_spec.partition("=")
        if not values_text:
            raise SystemExit("--axis needs name=v1,v2,... got %r" % axis_spec)
        values: List = []
        for token in values_text.split(","):
            try:
                values.append(int(token))
            except ValueError:
                values.append(token)
        space.axis(name, values)
    result = space.sweep(function, jobs=args.jobs, cache=_cache_from(args))
    print(result.render())
    print()
    print("sensitivity (max/min cold-cycle swing per axis):")
    for axis, ratio in sorted(result.sensitivity().items(),
                              key=lambda item: -item[1]):
        print("  %-20s %.2fx" % (axis, ratio))
    print("best point: %s" % result.best().settings)
    return 0


def cmd_trace(args) -> int:
    """Capture a traced measurement; print the profile, optionally export.

    The default mode runs the full cold/warm protocol with the tracer
    attached and prints the per-phase profile table; ``--out`` also
    writes the capture as Chrome ``trace_event`` JSON for Perfetto.
    ``--report`` keeps the old behaviour (static instruction-mix report
    plus program validation, no simulation).
    """
    if args.report:
        return _trace_report(args)

    from repro.core.parallel import execute_task
    from repro.core.spec import MeasurementSpec
    from repro.obs import profile_table, write_chrome_trace

    function = _resolve_function(args.function)
    spec = MeasurementSpec(
        function=function.name, isa=args.isa, scale=_scale_from(args),
        seed=args.seed, db=args.db if function.suite == "hotel" else None,
        trace=True, vector=_vector_from(args))
    measurement = execute_task(spec)
    print("%s on simulated %s (traced, %d requests)" % (
        function.name, args.isa, len(measurement.records)))
    print(_format_stats("cold (request 1)", measurement.cold))
    print(_format_stats("warm (request 10)", measurement.warm))
    print()
    print(profile_table(measurement.trace))
    if args.out:
        path = write_chrome_trace(measurement.trace, args.out)
        print()
        print("chrome trace written to %s (open in https://ui.perfetto.dev)"
              % path)
    return 0


def _trace_report(args) -> int:
    """Legacy trace mode: instruction-mix report + program validation."""
    from repro.serverless.engine import install_docker
    from repro.serverless.faas import FaasPlatform
    from repro.sim.isa import get_isa
    from repro.sim.isa.report import report
    from repro.sim.isa.validate import validate_assembled

    function = _resolve_function(args.function)
    hotel_suite = _hotel_services(args.db) if function.suite == "hotel" else None
    services = _services_for(function, hotel_suite)
    engine = install_docker(args.isa)
    engine.registry.push(function.image(args.isa))
    platform = FaasPlatform(engine)
    platform.deploy(function.name, function.name, function.runtime_name,
                    function.handler, services=services)
    record = platform.invoke(function.name, function.default_payload())
    program = function.invocation_program(record, services, _scale_from(args))
    assembled = get_isa(args.isa, vector=_vector_from(args)).assemble(program)
    print(report(assembled).render())
    issues = validate_assembled(assembled)
    if issues:
        print()
        print("validation findings:")
        for issue in issues:
            print("  %s" % issue)
    else:
        print()
        print("validation: clean")
    return 0


def cmd_chaos(args) -> int:
    """Run one measurement under a seeded fault plan; print the damage.

    The stock chaos mix arms every failure mode at ``--rate``; the seed
    makes the whole run deterministic — same seed, same faults, same
    retries, same fallbacks, bit-identical records.
    """
    from repro.core.parallel import execute_task
    from repro.core.spec import MeasurementSpec
    from repro.faults import FaultPlan
    from repro.serverless.metrics import MetricsCollector

    function = _resolve_function(args.function)
    plan = FaultPlan.chaos(seed=args.fault_seed, rate=args.rate,
                           stall_ticks=args.stall_ticks)
    spec = MeasurementSpec(
        function=function.name, isa=args.isa, scale=_scale_from(args),
        seed=args.seed, db=args.db if function.suite == "hotel" else None,
        faults=plan, sampling=_sampling_from(args),
        vector=_vector_from(args))
    measurement = execute_task(spec)
    print("%s on simulated %s under chaos (fault seed %d, rate %g)" % (
        function.name, args.isa, args.fault_seed, args.rate))
    print(_format_stats("cold (request 1)", measurement.cold))
    print(_format_stats("warm (request 10)", measurement.warm))
    errors = sum(1 for record in measurement.records if not record.ok)
    injected = sum(
        amount for record in measurement.records
        for key, amount in record.metrics.items() if key.startswith("faults."))
    print("requests: %d ok, %d failed; %d fault(s) injected" % (
        len(measurement.records) - errors, errors, int(injected)))
    collector = MetricsCollector()
    collector.observe_all(measurement.records)
    print()
    print(collector.render_resilience())
    return 0


def cmd_serve(args) -> int:
    """Serve a trace-driven open-loop workload on an autoscaled pool.

    Unlike ``measure`` (one instance, ten requests, cycle-accurate), this
    drives a seeded arrival trace through the multi-instance router so
    the service-level behaviour shows: queueing, admission control,
    panic-mode scale-ups, cold-start storms, sojourn-time tails.  Fully
    deterministic — two runs with the same seed print identical reports.
    """
    import json

    from repro.serverless.loadgen import arrival_ticks
    from repro.serverless.metrics import MetricsCollector
    from repro.serverless.platform import ClusterConfig, make_platform
    from repro.serverless.scaler import ScalingConfig

    function = _resolve_function(args.function)
    if _sampling_from(args) is not None:
        # The serve verb drives the router's service-tick model, not the
        # cycle-accurate pipeline; accept the flag for interface
        # uniformity but say plainly that nothing is sampled.
        print("note: serve runs no detailed simulation; --sampling has "
              "no effect here", file=sys.stderr)
    if _vector_from(args) is not None:
        # Same story for the vector unit: serve never assembles IR.
        print("note: serve runs no detailed simulation; --vector has "
              "no effect here", file=sys.stderr)
    services: Dict[str, Any] = {}
    if function.suite == "hotel":
        if not args.db:
            raise SystemExit(
                "%s needs a database; pass --db (cassandra/mongodb/...)"
                % function.name)
        services = _hotel_services(args.db).services_for(function)
    cluster = None
    if args.nodes:
        cluster = ClusterConfig(nodes=args.nodes, placement=args.placement,
                                node_capacity=args.node_capacity,
                                node_fail_rate=args.node_fail)
    platform = make_platform(args.isa, cluster=cluster, seed=args.seed)
    platform.registry.push(function.image(args.isa))
    scaling = ScalingConfig(
        target_concurrency=args.target_concurrency,
        min_instances=args.min_instances,
        max_instances=args.max_instances,
        queue_capacity=args.queue_capacity,
    )
    platform.deploy(function.name, function.name, function.runtime_name,
                    function.handler, services=services, scaling=scaling)
    arrivals = arrival_ticks(args.profile, rps=args.rps,
                             requests=args.requests, seed=args.seed)
    result = platform.serve(function.name, arrivals,
                            payload_factory=function.default_payload)

    print("%s on simulated %s: %s arrivals, %g rps, %d requests (seed %d)" % (
        function.name, args.isa, args.profile, args.rps, args.requests,
        args.seed))
    if cluster is not None:
        # Only clustered serves print the platform line: with --nodes
        # unset the output stays byte-identical to the single-host CLI.
        print("platform: %s" % platform.description)
    print(result.summary())
    print()
    print("scaling events:")
    print(result.event_log() or "  (none)")
    collector = MetricsCollector()
    collector.observe_all(result.records)
    print()
    print(collector.render_serving())
    if result.samples:
        from repro.analysis.charts import serving_timeline

        print()
        print(serving_timeline(result.samples))
    if result.node_samples:
        from repro.analysis.charts import cluster_timeline

        print()
        print("per-node instances:")
        print(cluster_timeline(result.node_samples))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
        print()
        print("serve artifact written to %s" % args.out)
    return 0


def cmd_lukewarm(args) -> int:
    """Print the cold/warm/lukewarm triple for a function."""
    harness = ExperimentHarness(isa=args.isa, scale=_scale_from(args),
                                seed=args.seed)
    measurement = harness.measure_lukewarm(
        function=get_function(args.function),
        intruder=get_function(args.intruder),
    )
    print("%-12s %10s" % ("state", "cycles"))
    print("%-12s %10d" % ("cold", measurement.cold.cycles))
    print("%-12s %10d" % ("warm", measurement.warm.cycles))
    print("%-12s %10d  (%.1fx warm)" % ("lukewarm", measurement.lukewarm.cycles,
                                        measurement.lukewarm_slowdown))
    return 0


def cmd_pipeline(args) -> int:
    """Measure the chained video-analytics pipeline."""
    from repro.workloads.extras import deploy_video_pipeline

    harness = ExperimentHarness(isa=args.isa, scale=_scale_from(args),
                                seed=args.seed)
    measurement = harness.measure_pipeline(deploy_video_pipeline)
    print("video-analytics pipeline on %s" % args.isa)
    print(_format_stats("cold (chain cold)", measurement.cold))
    print(_format_stats("warm (chain warm)", measurement.warm))
    children = measurement.records[0].children
    print("cold request drove %d downstream invocations (%d cold)" % (
        len(children), sum(1 for child in children if child.cold)))
    return 0


def cmd_reproduce(args) -> int:
    """Regenerate every evaluation figure's data into --out."""
    from repro.core.reproduce import reproduce_all

    reproduce_all(
        scale=_scale_from(args),
        output_dir=args.out,
        db=args.db,
        seed=args.seed,
        progress=lambda message: print(message, file=sys.stderr),
        jobs=args.jobs,
        cache=_cache_from(args),
        sampling=_sampling_from(args),
    )
    print("figure data written to %s" % args.out)
    return 0


def cmd_cache(args) -> int:
    """Inspect or clear the persistent result cache."""
    from repro.core.rescache import ResultCache
    from repro.sim.isa import blockjit, predecode

    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print("removed %d cached measurement(s) from %s" % (removed, cache.root))
        return 0
    stats = cache.stats()
    print("result cache at %s" % stats["root"])
    print("  entries: %d" % stats["entries"])
    print("  size:    %.1f KiB" % (stats["bytes"] / 1024.0))
    replays = predecode.STATS["block_replays"]
    decoded = predecode.STATS["decoded_blocks"]
    hit_rate = (1.0 - decoded / replays) if replays else 0.0
    print("predecode cache (tier 2, %s, this process):"
          % ("enabled" if predecode.enabled() else "disabled"))
    print("  block replays: %d  decoded: %d  hit rate: %.1f%%"
          % (replays, decoded, hit_rate * 100))
    jit = blockjit.STATS
    calls = jit["compiled_calls"] + jit["interpreted_calls"]
    jit_rate = (jit["compiled_calls"] / calls) if calls else 0.0
    print("block JIT (tier 3, %s, threshold %d, this process):"
          % ("enabled" if blockjit.enabled() else "disabled",
             blockjit.threshold()))
    print("  compiled units: %d (%.2fs)  declined: %d"
          % (jit["compiled_units"], jit["compile_s"], jit["declined"]))
    print("  node executions: %d compiled / %d interpreted "
          "(%.1f%% compiled)"
          % (jit["compiled_calls"], jit["interpreted_calls"],
             jit_rate * 100))
    return 0


#: Where ``experiment run`` writes (and ``experiment render`` reads)
#: result artifacts unless ``--out`` says otherwise.
DEFAULT_EXPERIMENT_DIR = "benchmarks/output/experiments"


def _experiment_spec_from(args):
    """Resolve the study to run: a catalog name or a ``--spec`` file."""
    from repro.experiments import ExperimentSpec, get_experiment

    if getattr(args, "spec", None):
        from pathlib import Path

        text = Path(args.spec).read_text()
        if args.spec.endswith((".yaml", ".yml")):
            spec = ExperimentSpec.from_yaml(text)
        else:
            import json

            spec = ExperimentSpec.from_dict(json.loads(text))
    elif args.name:
        try:
            spec = get_experiment(args.name)
        except KeyError as error:
            raise SystemExit(str(error.args[0]))
    else:
        raise SystemExit("experiment run needs a catalog name or --spec FILE "
                         "(see `python -m repro experiment list`)")
    if getattr(args, "seed", None) is not None:
        spec = spec.with_base(seed=args.seed)
    return spec


def cmd_experiment_list(_args) -> int:
    """Print the experiment catalog, one line per named study."""
    from repro.experiments import iter_experiments

    print("%-22s %-8s %7s  %s" % ("name", "kind", "points", "title"))
    for spec in iter_experiments():
        print("%-22s %-8s %7d  %s" % (spec.name, spec.kind,
                                      spec.point_count(), spec.title))
    return 0


def cmd_experiment_run(args) -> int:
    """Run a study and write its versioned result artifact."""
    from repro.experiments import run_experiment

    spec = _experiment_spec_from(args)
    print("experiment %s (%s): %d point(s), spec fingerprint %s"
          % (spec.name, spec.kind, spec.point_count(), spec.fingerprint()))
    try:
        result = run_experiment(spec, jobs=args.jobs, cache=_cache_from(args),
                                progress=lambda line: print("  " + line))
    except (KeyError, ValueError) as error:
        raise SystemExit(str(error))
    print()
    print(result.render_markdown())
    json_path, md_path = result.write(args.out)
    print("wrote %s and %s" % (json_path, md_path))
    return 0


def cmd_experiment_render(args) -> int:
    """Re-render a previously written artifact as a markdown table."""
    from pathlib import Path

    from repro.experiments import load_result, render_markdown

    target = Path(args.name)
    if not target.is_file():
        target = Path(args.out) / ("%s.json" % args.name)
    if not target.is_file():
        raise SystemExit(
            "no result artifact for %r (looked for %s); run "
            "`python -m repro experiment run %s` first"
            % (args.name, target, args.name))
    try:
        document = load_result(target)
    except ValueError as error:
        raise SystemExit(str(error))
    print(render_markdown(document))
    return 0


def cmd_bench_smoke(args) -> int:
    """Time the pinned perf-smoke batch; optionally emit JSON."""
    from repro.core.smoke import (
        append_entry,
        phase_gate_skips,
        phase_regressions,
        render_smoke,
        run_smoke,
        wall_regression,
    )

    report = run_smoke(jobs=args.jobs,
                       cache=None if args.use_cache else False,
                       sampling=getattr(args, "sampling", None),
                       legacy=args.with_legacy)
    print(render_smoke(report, as_json=args.json))
    if not args.append:
        return 0
    entry, previous = append_entry(report, path=args.trajectory)
    print("appended entry %s to %s"
          % (entry.get("sha") or "(no sha)", args.trajectory))
    failed = []
    change = wall_regression(previous, entry)
    if change is not None:
        print("wall-clock vs previous entry (%s): %+.1f%%"
              % (previous.get("sha") or "(no sha)", change * 100))
        if args.max_regress is not None and change > args.max_regress:
            failed.append(("wall_s", change))
    for phase in phase_gate_skips(previous, entry):
        print("  %s: new phase, no baseline yet — gated from the next "
              "entry on" % phase)
    try:
        gated = phase_regressions(previous, entry)
    except ValueError as error:
        # Fail closed: an ungateable baseline (zero/missing wall, vanished
        # phase) is a broken trajectory, not a pass.
        print("FAIL: %s" % error)
        return 1
    for phase, phase_change in sorted(gated.items()):
        print("  %s wall-clock: %+.1f%%" % (phase, phase_change * 100))
        if args.max_regress is not None and phase_change > args.max_regress:
            failed.append((phase, phase_change))
    for name, value in failed:
        print("FAIL: %s regression %+.1f%% exceeds %.0f%% threshold"
              % (name, value * 100, args.max_regress * 100))
    return 1 if failed else 0


def cmd_calibrate(args) -> int:
    """Bound sampled-vs-full-detail error over the function catalog."""
    from repro.core.calibration import calibrate
    from repro.sim.sampling import SamplingConfig

    try:
        sampling = SamplingConfig.parse(args.sampling)
    except ValueError as error:
        raise SystemExit(str(error))
    if sampling is None:
        raise SystemExit("calibrate needs a sampling spec "
                         "(e.g. --sampling accurate)")
    report = calibrate(sampling, isa=args.isa, db=args.db)
    print(report.render())
    if args.bound is not None:
        try:
            report.assert_bounded(args.bound)
        except AssertionError as error:
            print("FAIL: %s" % error)
            return 1
        print("OK: worst CPI error %.2f%% within bound %.2f%%"
              % (report.worst_cpi_error * 100, args.bound * 100))
    return 0


def cmd_dbcompare(args) -> int:
    """Fig 4.20: MongoDB vs Cassandra request times under QEMU."""
    from repro.db import CassandraStore, MongoStore
    from repro.emu import make_dev_vm
    from repro.workloads.hotel import HotelSuite

    print("%-16s %12s %12s %12s %12s" % ("function", "cass_cold", "cass_warm",
                                         "mongo_cold", "mongo_warm"))
    rows: Dict[str, Dict[str, tuple]] = {}
    for store_cls in (CassandraStore, MongoStore):
        suite = HotelSuite(store_cls())
        vm = make_dev_vm("x86")
        vm.boot()
        vm.boot_database_container(suite.db)
        for function in suite.functions:
            services = suite.services_for(function)
            cold = vm.time_request(function, services=services, cold=True)
            for sequence in range(2, 10):
                vm.time_request(function, services=services, sequence=sequence)
            warm = vm.time_request(function, services=services, sequence=10)
            rows.setdefault(function.short_name, {})[suite.db.name] = (cold, warm)
    for short, by_db in rows.items():
        print("%-16s %12.0f %12.0f %12.0f %12.0f" % (
            short, *by_db["cassandra"], *by_db["mongodb"]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro argument parser (one subcommand per task)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benchmarking support for RISC-V CPUs in serverless computing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark functions").set_defaults(
        func=cmd_list)

    measure = sub.add_parser("measure", help="run the 10-request protocol")
    measure.add_argument("function")
    measure.add_argument("--isa", default="riscv", choices=["riscv", "x86", "arm"])
    measure.add_argument("--db", default="cassandra")
    measure.add_argument("--seed", type=int, default=0)
    _add_scale_arguments(measure)
    _add_sampling_argument(measure)
    _add_vector_argument(measure)
    measure.set_defaults(func=cmd_measure)

    compare = sub.add_parser("compare", help="compare ISAs for one function")
    compare.add_argument("function")
    compare.add_argument("--isas", default="riscv,x86")
    compare.add_argument("--db", default="cassandra")
    compare.add_argument("--seed", type=int, default=0)
    _add_scale_arguments(compare)
    compare.set_defaults(func=cmd_compare)

    suite = sub.add_parser("suite", help="measure a whole suite")
    suite.add_argument("suite", choices=sorted(SUITES))
    suite.add_argument("--isa", default="riscv", choices=["riscv", "x86", "arm"])
    suite.add_argument("--db", default="cassandra")
    suite.add_argument("--seed", type=int, default=0)
    _add_scale_arguments(suite)
    _add_parallel_arguments(suite)
    _add_sampling_argument(suite)
    _add_vector_argument(suite)
    suite.set_defaults(func=cmd_suite)

    sizes = sub.add_parser("sizes", help="container size table")
    sizes.add_argument("--arch", choices=["x86", "riscv", "arm"])
    sizes.set_defaults(func=cmd_sizes)

    dse = sub.add_parser("dse", help="design-space exploration sweep")
    dse.add_argument("function")
    dse.add_argument("--isa", default="riscv", choices=["riscv", "x86", "arm"])
    dse.add_argument("--axis", action="append", required=True,
                     metavar="NAME=V1,V2,...")
    _add_scale_arguments(dse)
    _add_parallel_arguments(dse)
    dse.set_defaults(func=cmd_dse)

    trace = sub.add_parser(
        "trace", help="traced measurement: profile table + Chrome JSON")
    trace.add_argument("function")
    trace.add_argument("--isa", default="riscv", type=_normalize_isa,
                       help="riscv/x86/arm (vendor spellings like riscv64, "
                            "x86_64, aarch64 accepted)")
    trace.add_argument("--db", default="cassandra")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None, metavar="TRACE_JSON",
                       help="write the capture as Chrome trace_event JSON "
                            "(load in https://ui.perfetto.dev)")
    trace.add_argument("--report", action="store_true",
                       help="legacy mode: static instruction-mix report + "
                            "program validation instead of a traced run")
    _add_scale_arguments(trace)
    _add_vector_argument(trace)
    trace.set_defaults(func=cmd_trace)

    chaos = sub.add_parser(
        "chaos", help="measurement under a seeded, deterministic fault plan")
    chaos.add_argument("function")
    chaos.add_argument("--isa", default="riscv", type=_normalize_isa,
                       help="riscv/x86/arm (vendor spellings accepted)")
    chaos.add_argument("--db", default="cassandra")
    chaos.add_argument("--seed", type=int, default=0,
                       help="measurement seed (simulator determinism)")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="fault-plan seed: same seed, same faults")
    chaos.add_argument("--rate", type=float, default=0.1,
                       help="per-site fault probability (default 0.1)")
    chaos.add_argument("--stall-ticks", type=int, default=32,
                       help="cold-start stall / RPC latency-spike magnitude")
    _add_scale_arguments(chaos)
    _add_sampling_argument(chaos)
    _add_vector_argument(chaos)
    chaos.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve", help="autoscaled multi-instance serving under open-loop load")
    serve.add_argument("function")
    serve.add_argument("--isa", default="riscv", type=_normalize_isa,
                       help="riscv/x86/arm (vendor spellings accepted)")
    serve.add_argument("--profile", default="poisson",
                       choices=("poisson", "burst", "diurnal"),
                       help="arrival-trace shape (default poisson)")
    serve.add_argument("--rps", type=float, default=100.0,
                       help="mean request rate per 1000 ticks (default 100)")
    serve.add_argument("--requests", type=int, default=200,
                       help="arrivals to generate (default 200)")
    serve.add_argument("--seed", type=int, default=0,
                       help="trace + service-jitter seed: same seed, "
                            "byte-identical run")
    serve.add_argument("--target-concurrency", type=int, default=2,
                       help="requests one instance serves at once (default 2)")
    serve.add_argument("--min-instances", type=int, default=0,
                       help="pool floor; 0 enables scale-to-zero (default 0)")
    serve.add_argument("--max-instances", type=int, default=8,
                       help="pool ceiling (default 8)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="bounded queue; overflow is rejected (default 64)")
    serve.add_argument("--nodes", type=int, default=0,
                       help="serve on an N-node simulated cluster "
                            "(default 0: the classic single host)")
    serve.add_argument("--placement", default="binpack",
                       choices=("binpack", "spread"),
                       help="cluster scheduler policy (default binpack; "
                            "only with --nodes)")
    serve.add_argument("--node-capacity", type=int, default=None,
                       help="instances one node can host (default "
                            "unbounded; only with --nodes)")
    serve.add_argument("--node-fail", type=float, default=0.0,
                       help="per-evaluation node-failure probability "
                            "(default 0; only with --nodes)")
    serve.add_argument("--db", default=None,
                       help="datastore for hotel-suite functions")
    serve.add_argument("--out", default=None,
                       help="write records/events/samples as JSON")
    _add_sampling_argument(serve)
    _add_vector_argument(serve)
    serve.set_defaults(func=cmd_serve)

    lukewarm = sub.add_parser("lukewarm",
                              help="cold/warm/lukewarm triple for a function")
    lukewarm.add_argument("function")
    lukewarm.add_argument("--intruder", default="fibonacci-python")
    lukewarm.add_argument("--isa", default="riscv",
                          choices=["riscv", "x86", "arm"])
    lukewarm.add_argument("--seed", type=int, default=0)
    _add_scale_arguments(lukewarm)
    lukewarm.set_defaults(func=cmd_lukewarm)

    pipeline = sub.add_parser("pipeline",
                              help="measure the chained video-analytics pipeline")
    pipeline.add_argument("--isa", default="riscv",
                          choices=["riscv", "x86", "arm"])
    pipeline.add_argument("--seed", type=int, default=0)
    _add_scale_arguments(pipeline)
    pipeline.set_defaults(func=cmd_pipeline)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every evaluation figure's data")
    reproduce.add_argument("--out", default="reproduction-output")
    reproduce.add_argument("--db", default="cassandra")
    reproduce.add_argument("--seed", type=int, default=0)
    _add_scale_arguments(reproduce)
    _add_parallel_arguments(reproduce)
    _add_sampling_argument(reproduce)
    reproduce.set_defaults(func=cmd_reproduce)

    calibrate = sub.add_parser(
        "calibrate",
        help="bound sampled-simulation error vs full detail")
    calibrate.add_argument("--isa", default="riscv",
                           choices=["riscv", "x86", "arm"])
    calibrate.add_argument("--db", default="cassandra")
    calibrate.add_argument("--bound", type=float, default=None,
                           help="fail (exit 1) when worst CPI error "
                                "exceeds this fraction (e.g. 0.05)")
    _add_sampling_argument(calibrate)
    calibrate.set_defaults(func=cmd_calibrate)

    dbcompare = sub.add_parser("dbcompare",
                               help="MongoDB vs Cassandra under QEMU (Fig 4.20)")
    dbcompare.set_defaults(func=cmd_dbcompare)

    cache = sub.add_parser("cache", help="persistent result cache maintenance")
    cache.add_argument("action", choices=["stats", "clear"])
    cache.set_defaults(func=cmd_cache)

    experiment = sub.add_parser(
        "experiment",
        help="named studies with a $-cost model (see docs/EXPERIMENT_CATALOG.md)")
    esub = experiment.add_subparsers(dest="action", metavar="action",
                                     required=True)
    elist = esub.add_parser("list", help="list the experiment catalog")
    elist.set_defaults(func=cmd_experiment_list)
    erun = esub.add_parser(
        "run", help="run a study, write <name>.json + <name>.md")
    erun.add_argument("name", nargs="?", default=None,
                      help="catalog entry (see `experiment list`)")
    erun.add_argument("--spec", default=None, metavar="FILE",
                      help="run a spec file instead (JSON always; YAML when "
                           "PyYAML is installed)")
    erun.add_argument("--seed", type=int, default=None,
                      help="override the spec's base seed")
    erun.add_argument("--out", default=DEFAULT_EXPERIMENT_DIR,
                      help="artifact directory (default %s)"
                           % DEFAULT_EXPERIMENT_DIR)
    _add_parallel_arguments(erun)
    erun.set_defaults(func=cmd_experiment_run)
    erender = esub.add_parser(
        "render", help="re-render a written artifact as markdown")
    erender.add_argument("name",
                         help="catalog entry name or a path to a result JSON")
    erender.add_argument("--out", default=DEFAULT_EXPERIMENT_DIR,
                         help="artifact directory to look in (default %s)"
                              % DEFAULT_EXPERIMENT_DIR)
    erender.set_defaults(func=cmd_experiment_render)

    smoke = sub.add_parser("bench-smoke",
                           help="time the pinned perf-smoke batch")
    smoke.add_argument("--json", action="store_true",
                       help="emit the machine-readable report")
    smoke.add_argument("--use-cache", action="store_true",
                       help="allow result-cache hits (timing is then not "
                            "a simulator benchmark)")
    smoke.add_argument("--jobs", type=int, default=None,
                       help="measurement workers (default REPRO_JOBS or all cores)")
    smoke.add_argument("--append", action="store_true",
                       help="append this run to the trajectory file")
    smoke.add_argument("--trajectory", default="BENCH_SMOKE.json",
                       help="trajectory file for --append")
    smoke.add_argument("--max-regress", type=float, default=None,
                       help="with --append: fail (exit 1) when wall-clock "
                            "regresses more than this fraction vs the "
                            "previous entry (e.g. 0.25)")
    smoke.add_argument("--with-legacy", action="store_true",
                       help="also time the batch with the predecode cache "
                            "disabled (same-machine baseline + speedups)")
    smoke.add_argument("--sampling", default="accurate", metavar="SPEC",
                       help="config for the sampled phase (default: "
                            "accurate; 'off' skips the phase)")
    smoke.set_defaults(func=cmd_bench_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # The stdout reader went away (`repro ... | head`); exit quietly
        # with the conventional SIGPIPE status instead of a traceback.
        # Point stdout at devnull so interpreter teardown's flush of the
        # dead pipe cannot raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + 13


if __name__ == "__main__":
    raise SystemExit(main())
