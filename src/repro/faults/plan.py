"""Fault plans: what fails, where, how often — deterministically.

A :class:`FaultPlan` is configuration, not state: immutable, hashable
and picklable, so it can ride on a :class:`~repro.core.spec.MeasurementSpec`
across process boundaries and participate in spec identity.  Arming a
plan (:meth:`FaultPlan.arm`) produces the mutable :class:`FaultInjector`
that hook sites actually consult.

Determinism contract
--------------------
The ``k``-th draw at hook site ``s`` fires iff

    ``sha256(seed, s, k) / 2**64 < rate(s)``

independent of every other site's draws and of wall clock.  Two armed
injectors from equal plans make identical decisions at every site
regardless of process, thread or interleaving with other sites.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, Optional, Tuple

#: The named hook sites components consult, one per failure mode the
#: serverless substrate must survive (see DESIGN.md for the inventory).
FAULT_SITES = (
    "engine.create",     # container create fails (EngineError)
    "engine.start",      # container start fails (EngineError)
    "engine.stop",       # container stop fails (EngineError)
    "engine.remove",     # container remove fails (EngineError)
    "faas.cold_start",   # cold start stalls for `ticks` logical ticks
    "faas.handler",      # handler crashes mid-request
    "rpc.drop",          # RPC request dropped (UNAVAILABLE)
    "rpc.latency",       # RPC latency spike of `ticks`
    "db.timeout",        # datastore / cache operation times out
    "emu.disk",          # transient disk error inside the emulated VM
    "cluster.node_down",  # a whole cluster node fails (NodeDownError)
)

_TWO_64 = float(1 << 64)


class InjectedFault(RuntimeError):
    """An injected failure, carrying the hook site that produced it."""

    def __init__(self, site: str, message: Optional[str] = None):
        super().__init__(message or "injected fault at %s" % site)
        self.site = site


class NodeDownError(RuntimeError):
    """A cluster node is unavailable.

    The one error type for node loss everywhere in the stack: the
    serverless cluster platform raises it for requests in flight on a
    failed node, and :class:`~repro.db.cluster.CassandraCluster` raises
    it when live replicas cannot satisfy the consistency level — both
    driven by the same ``cluster.node_down`` fault site.
    """


class FaultSpec:
    """One site's failure behaviour: probability, budget, magnitude."""

    __slots__ = ("site", "rate", "max_fires", "ticks")

    def __init__(self, site: str, rate: float, max_fires: Optional[int] = None,
                 ticks: int = 0):
        if site not in FAULT_SITES:
            raise ValueError("unknown fault site %r; have %s"
                             % (site, FAULT_SITES))
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1], got %r" % rate)
        if max_fires is not None and max_fires < 0:
            raise ValueError("max_fires must be >= 0")
        if ticks < 0:
            raise ValueError("ticks must be >= 0")
        object.__setattr__(self, "site", site)
        object.__setattr__(self, "rate", float(rate))
        object.__setattr__(self, "max_fires", max_fires)
        object.__setattr__(self, "ticks", int(ticks))

    def __setattr__(self, name, value):
        raise AttributeError("FaultSpec is immutable")

    def _identity(self) -> tuple:
        return (self.site, self.rate, self.max_fires, self.ticks)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultSpec):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:
        parts = ["%s@%g" % (self.site, self.rate)]
        if self.max_fires is not None:
            parts.append("max=%d" % self.max_fires)
        if self.ticks:
            parts.append("ticks=%d" % self.ticks)
        return "FaultSpec(%s)" % ", ".join(parts)

    # -- pickling (slots) --------------------------------------------------

    def __getstate__(self):
        return self._identity()

    def __setstate__(self, state):
        site, rate, max_fires, ticks = state
        object.__setattr__(self, "site", site)
        object.__setattr__(self, "rate", rate)
        object.__setattr__(self, "max_fires", max_fires)
        object.__setattr__(self, "ticks", ticks)


class FaultPlan:
    """An immutable set of :class:`FaultSpec` under one seed.

    ``retry_attempts`` / ``retry_backoff`` / ``retry_deadline`` configure
    the :class:`~repro.faults.policy.RetryPolicy` recovering components
    build when this plan is armed, so one object fully describes a chaos
    experiment — the CLI's ``--fault-seed`` maps straight onto it.
    """

    __slots__ = ("seed", "specs", "retry_attempts", "retry_backoff",
                 "retry_deadline")

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = (),
                 retry_attempts: int = 3, retry_backoff: int = 4,
                 retry_deadline: Optional[int] = None):
        specs = tuple(specs)
        sites = [spec.site for spec in specs]
        if len(set(sites)) != len(sites):
            raise ValueError("duplicate fault site in plan: %s" % sites)
        if retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "specs", specs)
        object.__setattr__(self, "retry_attempts", int(retry_attempts))
        object.__setattr__(self, "retry_backoff", int(retry_backoff))
        object.__setattr__(self, "retry_deadline", retry_deadline)

    def __setattr__(self, name, value):
        raise AttributeError("FaultPlan is immutable")

    @classmethod
    def chaos(cls, seed: int = 0, rate: float = 0.1,
              stall_ticks: int = 32) -> "FaultPlan":
        """The stock chaos mix the CLI verb uses: every failure mode armed
        at ``rate``, stalls and latency spikes of ``stall_ticks``."""
        return cls(seed=seed, specs=[
            FaultSpec("engine.create", rate),
            FaultSpec("engine.start", rate),
            FaultSpec("faas.cold_start", rate, ticks=stall_ticks),
            FaultSpec("faas.handler", rate),
            FaultSpec("rpc.drop", rate),
            FaultSpec("rpc.latency", rate, ticks=stall_ticks),
            FaultSpec("db.timeout", rate),
            FaultSpec("emu.disk", rate),
        ])

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    def arm(self) -> "FaultInjector":
        """Build the runtime injector for one experiment run."""
        return FaultInjector(self)

    def fingerprint(self) -> tuple:
        """Hashable identity for spec equality and cache keying."""
        return (self.seed, tuple(spec._identity() for spec in self.specs),
                self.retry_attempts, self.retry_backoff, self.retry_deadline)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return "FaultPlan(seed=%d, %d sites)" % (self.seed, len(self.specs))

    # -- pickling (slots) --------------------------------------------------

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name in self.__slots__:
            object.__setattr__(self, name, state[name])


def _draw(seed: int, site: str, index: int) -> float:
    """Uniform [0, 1) from a pure hash of (seed, site, index)."""
    digest = hashlib.sha256(
        b"repro-fault|%d|%s|%d" % (seed, site.encode("ascii"), index)
    ).digest()
    return struct.unpack(">Q", digest[:8])[0] / _TWO_64


class FaultInjector:
    """The armed runtime consulted by hook sites.

    Mutable (per-site draw counters, fire counters) and therefore never
    shared across runs: arm a fresh injector per measurement.  The
    ``fired`` counters are the metering source — the platform snapshots
    them around each invocation and emits deltas onto
    ``InvocationRecord.metrics``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._draws: Dict[str, int] = {}
        #: site -> times the site actually fired.
        self.fired: Dict[str, int] = {}
        #: Optional :class:`repro.obs.Tracer`; fires then appear as
        #: instants on TRACK_FAULTS.
        self.tracer = None

    def should_fire(self, site: str) -> bool:
        """One deterministic draw at ``site``; True means inject."""
        spec = self.plan.spec_for(site)
        if spec is None or spec.rate == 0.0:
            return False
        if spec.max_fires is not None and self.fired.get(site, 0) >= spec.max_fires:
            return False
        index = self._draws.get(site, 0)
        self._draws[site] = index + 1
        if _draw(self.plan.seed, site, index) >= spec.rate:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        tracer = self.tracer
        if tracer is not None:
            from repro.obs.tracer import TRACK_FAULTS

            tracer.instant("fault:%s" % site, "fault", tracer.now,
                           TRACK_FAULTS, args={"fire": self.fired[site]})
        return True

    def ticks_for(self, site: str) -> int:
        """Magnitude (stall/latency ticks) configured for ``site``."""
        spec = self.plan.spec_for(site)
        return spec.ticks if spec is not None else 0

    def maybe_raise(self, site: str, exception=InjectedFault) -> None:
        """Draw at ``site`` and raise ``exception`` on fire.

        ``exception`` may be an exception *class* taking one message
        argument (e.g. ``EngineError``) — used where callers already
        handle a domain error type — or the default
        :class:`InjectedFault`.
        """
        if self.should_fire(site):
            if exception is InjectedFault:
                raise InjectedFault(site)
            raise exception("injected fault at %s" % site)

    def snapshot(self) -> Dict[str, int]:
        """Copy of the fire counters (for before/after metering deltas)."""
        return dict(self.fired)

    def total_fired(self) -> int:
        return sum(self.fired.values())

    def __repr__(self) -> str:
        return "FaultInjector(seed=%d, %d fired)" % (
            self.plan.seed, self.total_fired(),
        )
