"""repro.faults — seeded, deterministic fault injection and resilience.

The paper's methodology measures the happy path; a production serverless
substrate also has to survive the unhappy ones — failed container
operations, stalled cold starts, crashing handlers, dropped RPCs, timed
out datastores (Serv-Drishti models failure handling as a first-class
part of serverless request simulation; Vitamin-V makes trustworthiness
the headline requirement for RISC-V cloud stacks).  This package adds
that dimension without giving up the repo's core invariant: **every run
is bit-identical under its seed**.

Three pieces:

* :class:`FaultPlan` / :class:`FaultSpec` — the immutable, picklable
  description of *what* fails and *how often*, keyed by named hook
  sites (:data:`FAULT_SITES`).  A plan travels on
  :class:`~repro.core.spec.MeasurementSpec` exactly like ``trace=True``.
* :class:`FaultInjector` — the armed runtime: each hook site keeps its
  own draw counter, and decision ``k`` at site ``s`` is a pure hash of
  ``(seed, s, k)``.  Call order across *different* sites therefore
  cannot perturb outcomes — the property that makes faulted runs
  reproducible under the parallel measurement engine.
* :class:`RetryPolicy` / :class:`CircuitBreaker` /
  :class:`ResilientCache` — the recovery half: bounded retries with
  deterministic exponential backoff, a three-state breaker, and the
  graceful-degradation wrapper that lets the hotel trio fall through to
  the backing database when memcached is down.

Every hook in the serverless/db/emu stacks guards on ``faults is None``
— the same discipline as the tracer — so the disabled path allocates
nothing and times identically to a build without this package.
"""

from repro.faults.plan import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NodeDownError,
)
from repro.faults.policy import (
    BreakerOpen,
    CircuitBreaker,
    ResilientCache,
    RetryBudgetExceeded,
    RetryPolicy,
)

__all__ = [
    "FAULT_SITES",
    "BreakerOpen",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "NodeDownError",
    "ResilientCache",
    "RetryBudgetExceeded",
    "RetryPolicy",
]
