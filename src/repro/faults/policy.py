"""Resilience policies: retries, circuit breaking, graceful degradation.

The recovery half of :mod:`repro.faults`.  Everything here is clocked in
*logical ticks* or *operation counts* — never wall time — so recovery
behaviour is as deterministic as the faults it recovers from.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.faults.plan import _draw


class RetryBudgetExceeded(RuntimeError):
    """All retry attempts (or the deadline budget) were exhausted."""

    def __init__(self, label: str, attempts: int, last_error: BaseException):
        super().__init__(
            "%s failed after %d attempt(s): %s" % (label, attempts, last_error)
        )
        self.label = label
        self.attempts = attempts
        self.last_error = last_error


class RetryPolicy:
    """Bounded retries with deterministic exponential backoff + jitter.

    ``attempts`` is the total try budget (1 = no retries).  Retry ``n``
    (1-based) backs off ``backoff_ticks * 2**(n-1)`` ticks plus a
    deterministic jitter in ``[0, backoff_ticks)`` drawn from
    ``(jitter_seed, label, n)`` — same label, same seed, same delays,
    every run.  ``deadline_ticks`` caps the *summed* backoff: a retry
    whose delay would cross the budget fails immediately instead
    (timeout semantics).
    """

    def __init__(self, attempts: int = 3, backoff_ticks: int = 4,
                 jitter_seed: int = 0, deadline_ticks: Optional[int] = None):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if backoff_ticks < 0:
            raise ValueError("backoff_ticks must be >= 0")
        if deadline_ticks is not None and deadline_ticks < 0:
            raise ValueError("deadline_ticks must be >= 0")
        self.attempts = attempts
        self.backoff_ticks = backoff_ticks
        self.jitter_seed = jitter_seed
        self.deadline_ticks = deadline_ticks

    @classmethod
    def from_plan(cls, plan) -> "RetryPolicy":
        """The policy a :class:`~repro.faults.plan.FaultPlan` prescribes."""
        return cls(attempts=plan.retry_attempts,
                   backoff_ticks=plan.retry_backoff,
                   jitter_seed=plan.seed,
                   deadline_ticks=plan.retry_deadline)

    def backoff_for(self, label: str, retry: int) -> int:
        """Backoff ticks before 1-based retry ``retry`` of ``label``."""
        if retry < 1:
            raise ValueError("retry numbering is 1-based")
        base = self.backoff_ticks * (2 ** (retry - 1))
        if self.backoff_ticks == 0:
            return 0
        jitter = int(_draw(self.jitter_seed, "retry|%s" % label, retry)
                     * self.backoff_ticks)
        return base + jitter

    def call(
        self,
        operation: Callable[[], Any],
        label: str,
        retry_on: Tuple[type, ...] = (Exception,),
        advance: Optional[Callable[[int], Any]] = None,
    ) -> Tuple[Any, int, int]:
        """Run ``operation`` under the retry budget.

        Returns ``(result, attempts_used, backoff_ticks_spent)``.
        ``advance(ticks)`` (when given) is called with each backoff so
        the caller's logical clock — platform clock, tracer — observes
        the waiting.  Raises :class:`RetryBudgetExceeded` when the try
        or deadline budget runs out.
        """
        spent = 0
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.attempts + 1):
            try:
                return operation(), attempt, spent
            except retry_on as error:
                last_error = error
                if attempt == self.attempts:
                    break
                delay = self.backoff_for(label, attempt)
                if (self.deadline_ticks is not None
                        and spent + delay > self.deadline_ticks):
                    raise RetryBudgetExceeded(label, attempt, error)
                spent += delay
                if advance is not None and delay:
                    advance(delay)
        assert last_error is not None
        raise RetryBudgetExceeded(label, self.attempts, last_error)

    def __repr__(self) -> str:
        return "RetryPolicy(attempts=%d, backoff=%d, deadline=%s)" % (
            self.attempts, self.backoff_ticks, self.deadline_ticks,
        )


class BreakerOpen(RuntimeError):
    """The circuit breaker is open; the protected call was not made."""


class CircuitBreaker:
    """Three-state breaker (closed → open → half-open) on a logical clock.

    ``failure_threshold`` consecutive failures trip it open; after
    ``cooldown`` clock units it lets one probe through (half-open) — a
    success closes it, a failure re-opens and restarts the cooldown.
    The caller supplies the clock readings (operation counts, platform
    clock, tracer ticks), keeping trips reproducible.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 3, cooldown: int = 16):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0

    def allow(self, now: int) -> bool:
        """Whether a call may proceed at logical time ``now``."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN and now - self._opened_at >= self.cooldown:
            self.state = self.HALF_OPEN
            return True
        return self.state == self.HALF_OPEN

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self, now: int) -> None:
        self.consecutive_failures += 1
        if (self.state == self.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            if self.state != self.OPEN:
                self.trips += 1
            self.state = self.OPEN
            self._opened_at = now
            self.consecutive_failures = 0

    def __repr__(self) -> str:
        return "CircuitBreaker(%s, %d trips)" % (self.state, self.trips)


class ResilientCache:
    """Memcached wrapper: injected timeouts, breaker, DB fall-through.

    Mirrors the thesis's hotel architecture under failure: the cached
    trio consults memcached first and the primary database on a miss —
    so when memcached times out (site ``db.timeout``) or its breaker is
    open, this wrapper *degrades to a miss* instead of erroring.  The
    handler's existing miss path then serves from the backing DB with no
    handler changes, exactly how production caches fail gracefully.

    Writes during degradation are dropped (the DB stays authoritative).
    The breaker is clocked by operation count, so trips and recoveries
    are deterministic.  Fault metering is harvested per-request through
    :meth:`take_fault_metrics`, symmetric with ``take_receipt``.
    """

    def __init__(self, cache, injector=None, breaker: Optional[CircuitBreaker] = None):
        self.cache = cache
        self.injector = injector
        self.breaker = breaker or CircuitBreaker()
        self._ops = 0
        self._metrics: Dict[str, float] = {}

    # -- degradation plumbing ---------------------------------------------

    def _meter(self, key: str, amount: float = 1) -> None:
        self._metrics[key] = self._metrics.get(key, 0) + amount

    def _available(self) -> bool:
        """One protected attempt: breaker gate plus injected timeout."""
        self._ops += 1
        if not self.breaker.allow(self._ops):
            self._meter("fallbacks")
            return False
        injector = self.injector
        if injector is not None and injector.should_fire("db.timeout"):
            trips_before = self.breaker.trips
            self.breaker.record_failure(self._ops)
            self._meter("timeouts")
            if self.breaker.trips > trips_before:
                self._meter("breaker_trips")
            self._meter("fallbacks")
            return False
        self.breaker.record_success()
        return True

    def take_fault_metrics(self) -> Dict[str, float]:
        """Harvest (and reset) the degradation counters."""
        harvested = self._metrics
        self._metrics = {}
        return harvested

    @property
    def breaker_state(self) -> str:
        return self.breaker.state

    # -- the memcached surface --------------------------------------------

    def get(self, key: str):
        if not self._available():
            return None  # degrade to a miss: caller falls through to the DB
        return self.cache.get(key)

    def get_multi(self, keys) -> Dict[str, Any]:
        if not self._available():
            return {}
        return self.cache.get_multi(keys)

    def set(self, key: str, value, ttl: Optional[int] = None) -> None:
        if not self._available():
            return  # drop the write; the DB stays authoritative
        self.cache.set(key, value, ttl=ttl)

    def delete(self, key: str, quiet: bool = False) -> bool:
        if not self._available():
            return False
        return self.cache.delete(key, quiet=quiet)

    def take_receipt(self):
        return self.cache.take_receipt()

    def __getattr__(self, name):
        # Reads of metering/introspection attributes (hit_rate, clock,
        # tick, ...) pass through to the wrapped cache.
        return getattr(self.cache, name)

    def __len__(self) -> int:
        return len(self.cache)

    def __repr__(self) -> str:
        return "ResilientCache(%r, breaker=%s)" % (self.cache, self.breaker.state)
