"""Datastore substrates for the Hotel application.

The thesis's Hotel functions depend on MongoDB (replaced by Apache
Cassandra for the RISC-V port, §3.3.3) and Memcached.  We implement
working in-Python equivalents of every store the thesis considered:

* :mod:`repro.db.mongodb` — document store with B-tree-style indexes,
* :mod:`repro.db.cassandra` — wide-column LSM store (memtable, SSTables,
  bloom filters, compaction) with the JVM boot profile that made its
  RISC-V boots so slow,
* :mod:`repro.db.mariadb` — relational store (the rejected alternative),
* :mod:`repro.db.memcached` — slab-allocated LRU cache,
* :mod:`repro.db.redis` — in-memory KV store (rejected as a primary DB).

Every operation is metered in a :class:`~repro.db.engine.WorkReceipt`; the
Hotel workload models turn those receipts into IR programs so the work a
query *actually did* — index probes, SSTable scans, bytes serialized — is
what generates instruction and memory traffic in the simulator.
"""

from repro.db.cassandra import CassandraStore
from repro.db.cluster import CassandraCluster, NodeDownError
from repro.db.engine import Datastore, WorkReceipt
from repro.db.mariadb import MariaDbStore
from repro.db.memcached import MemcachedCache
from repro.db.mongodb import MongoStore
from repro.db.redis import RedisStore

#: Registry of primary datastores by the name the suite configs use.
DATASTORES = {
    "mongodb": MongoStore,
    "cassandra": CassandraStore,
    "mariadb": MariaDbStore,
    "redis": RedisStore,
}


def make_datastore(name: str, **kwargs) -> Datastore:
    """Instantiate a primary datastore by name."""
    try:
        cls = DATASTORES[name]
    except KeyError:
        raise ValueError("unknown datastore %r; have %s" % (name, sorted(DATASTORES)))
    return cls(**kwargs)


__all__ = [
    "CassandraCluster",
    "CassandraStore",
    "NodeDownError",
    "DATASTORES",
    "Datastore",
    "MariaDbStore",
    "MemcachedCache",
    "MongoStore",
    "RedisStore",
    "WorkReceipt",
    "make_datastore",
]
