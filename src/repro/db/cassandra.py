"""Apache Cassandra-like wide-column LSM store.

The replacement database the thesis ported the Hotel application to
(§3.3.3.2).  The storage engine is a real log-structured merge tree:

* writes land in a per-table **memtable**;
* when the memtable exceeds its threshold it flushes to an immutable
  sorted **SSTable** with a bloom filter;
* reads probe the memtable, then each SSTable newest-first, skipping
  tables whose bloom filter rejects the key;
* **compaction** merges SSTables once too many accumulate.

The extra read-path layers relative to MongoDB's B-tree are what make the
cold Cassandra requests slower in the Fig 4.20 comparison, and the JVM
boot profile is what made its QEMU RISC-V container boots take ~17
minutes despite the thesis tuning heap size and token counts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.db.engine import BootProfile, Datastore, encoded_size

_TOMBSTONE = object()


class BloomFilter:
    """A small double-hashed bloom filter over string keys."""

    __slots__ = ("bits", "size", "hashes")

    def __init__(self, expected_keys: int, bits_per_key: int = 10, hashes: int = 3):
        self.size = max(64, expected_keys * bits_per_key)
        self.bits = 0
        self.hashes = hashes

    def _positions(self, key: str) -> Iterator[int]:
        h1 = hash(key) & 0x7FFFFFFF
        h2 = hash(key + "#") & 0x7FFFFFFF | 1
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.size

    def add(self, key: str) -> None:
        for position in self._positions(key):
            self.bits |= 1 << position

    def might_contain(self, key: str) -> bool:
        return all(self.bits >> position & 1 for position in self._positions(key))


class SSTable:
    """An immutable sorted run of (key, value) pairs with a bloom filter."""

    __slots__ = ("keys", "values", "bloom", "bytes")

    def __init__(self, items: List[Tuple[str, Any]]):
        items = sorted(items)
        self.keys = [key for key, _value in items]
        self.values = [value for _key, value in items]
        self.bloom = BloomFilter(len(items))
        self.bytes = 0
        for key, value in items:
            self.bloom.add(key)
            if value is not _TOMBSTONE:
                self.bytes += encoded_size(value)

    def get(self, key: str) -> Tuple[bool, Any]:
        """Binary search; returns (found, value)."""
        import bisect

        position = bisect.bisect_left(self.keys, key)
        if position < len(self.keys) and self.keys[position] == key:
            return True, self.values[position]
        return False, None

    def __len__(self) -> int:
        return len(self.keys)


class _ColumnFamily:
    """One table: memtable + SSTable list."""

    __slots__ = ("memtable", "sstables")

    def __init__(self):
        self.memtable: Dict[str, Any] = {}
        self.sstables: List[SSTable] = []


class CassandraStore(Datastore):
    """LSM wide-column store with realistic read/write paths."""

    name = "cassandra"
    riscv_friendly = True  # containers for riscv64 exist on Docker Hub
    #: JVM class loading + gossip/token-ring init: an order of magnitude
    #: more boot work than mongod, amplified brutally under emulation.
    boot_profile = BootProfile(
        instructions=60_000_000_000, resident_bytes=512 << 20, jvm=True
    )

    def __init__(
        self,
        memtable_flush_threshold: int = 64,
        compaction_threshold: int = 4,
        num_tokens: int = 16,
        heap_mb: int = 512,
    ):
        super().__init__()
        if memtable_flush_threshold <= 0:
            raise ValueError("memtable threshold must be positive")
        if compaction_threshold < 2:
            raise ValueError("compaction threshold must be >= 2")
        self.memtable_flush_threshold = memtable_flush_threshold
        self.compaction_threshold = compaction_threshold
        self.num_tokens = num_tokens
        self.heap_mb = heap_mb
        self._families: Dict[str, _ColumnFamily] = {}
        self.flushes = 0
        self.compactions = 0

    def _family(self, table: str) -> _ColumnFamily:
        if table not in self._families:
            self._families[table] = _ColumnFamily()
        return self._families[table]

    # -- write path ---------------------------------------------------------------

    def put(self, table: str, key: str, record: Dict[str, Any]) -> None:
        family = self._family(table)
        self.receipt.add(ops=1)
        size = encoded_size(record)
        family.memtable[key] = dict(record)
        # Commit-log append + memtable insert.
        self.receipt.add(bytes_written=size, serializations=1, cpu_work=size // 8 + 6)
        if len(family.memtable) >= self.memtable_flush_threshold:
            self._flush(family)

    def delete(self, table: str, key: str) -> bool:
        existed = self.get(table, key) is not None
        family = self._family(table)
        family.memtable[key] = _TOMBSTONE
        self.receipt.add(ops=1, bytes_written=16, cpu_work=6)
        return existed

    def _flush(self, family: _ColumnFamily) -> None:
        items = list(family.memtable.items())
        sstable = SSTable(items)
        family.sstables.append(sstable)
        family.memtable.clear()
        self.flushes += 1
        self.receipt.add(
            bytes_written=sstable.bytes,
            cpu_work=len(sstable) * 12,  # sort + bloom build
        )
        if len(family.sstables) >= self.compaction_threshold:
            self._compact(family)

    def _compact(self, family: _ColumnFamily) -> None:
        merged: Dict[str, Any] = {}
        total = 0
        for sstable in family.sstables:  # oldest first; newer overwrite
            total += len(sstable)
            for key, value in zip(sstable.keys, sstable.values):
                merged[key] = value
        survivors = [
            (key, value) for key, value in merged.items() if value is not _TOMBSTONE
        ]
        family.sstables = [SSTable(survivors)] if survivors else []
        self.compactions += 1
        self.receipt.add(cpu_work=total * 10, bytes_read=total * 32,
                         bytes_written=len(survivors) * 32)

    def flush_all(self) -> None:
        """Force-flush every memtable (nodetool flush analog)."""
        for family in self._families.values():
            if family.memtable:
                self._flush(family)

    # -- read path -----------------------------------------------------------------

    def get(self, table: str, key: str) -> Optional[Dict[str, Any]]:
        family = self._family(table)
        self.receipt.add(ops=1, cpu_work=6)  # partitioner hash + token lookup
        if key in family.memtable:
            value = family.memtable[key]
            if value is _TOMBSTONE:
                self.receipt.add(structure_misses=1)
                return None
            size = encoded_size(value)
            self.receipt.add(rows_scanned=1, rows_returned=1, bytes_read=size,
                             serializations=1, cpu_work=size // 8)
            return dict(value)
        self.receipt.add(structure_misses=1)  # memtable probe failed
        for sstable in reversed(family.sstables):
            if not sstable.bloom.might_contain(key):
                self.receipt.add(cpu_work=3)  # bloom rejection is cheap
                continue
            # Touching an SSTable reads an index entry plus a compressed
            # data block (block-granular I/O + decompression) — the read
            # amplification a B-tree store does not pay.
            self.receipt.add(index_probes=1, cpu_work=310, bytes_read=2048)
            found, value = sstable.get(key)
            if found:
                if value is _TOMBSTONE:
                    return None
                size = encoded_size(value)
                self.receipt.add(rows_scanned=1, rows_returned=1, bytes_read=size,
                                 serializations=1, cpu_work=size // 8)
                return dict(value)
            self.receipt.add(structure_misses=1)  # bloom false positive
        return None

    def scan(self, table: str) -> Iterator[Dict[str, Any]]:
        family = self._family(table)
        self.receipt.add(ops=1)
        seen: Dict[str, Any] = {}
        for sstable in family.sstables:
            # Per-run iterator setup + merge bookkeeping per row.
            self.receipt.add(cpu_work=200 + 6 * len(sstable))
            for key, value in zip(sstable.keys, sstable.values):
                seen[key] = value
        seen.update(family.memtable)
        for key in sorted(seen):
            value = seen[key]
            if value is _TOMBSTONE:
                continue
            self.receipt.add(rows_scanned=1, bytes_read=encoded_size(value), cpu_work=8)
            yield dict(value)

    def query(self, table: str, **equals: Any) -> List[Dict[str, Any]]:
        # Cassandra has no ad-hoc secondary scans without an index; model
        # the ALLOW FILTERING path: full scan + filter.
        results = []
        for record in self.scan(table):
            if all(record.get(field) == value for field, value in equals.items()):
                self.receipt.add(rows_returned=1, serializations=1)
                results.append(record)
        return results

    # -- introspection -----------------------------------------------------------------

    def sstable_count(self, table: str) -> int:
        return len(self._family(table).sstables)

    def data_bytes(self) -> int:
        total = 0
        for family in self._families.values():
            for value in family.memtable.values():
                if value is not _TOMBSTONE:
                    total += encoded_size(value)
            for sstable in family.sstables:
                total += sstable.bytes
        return total
