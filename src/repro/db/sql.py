"""A small SQL front-end for the MariaDB-like store.

MariaDB is a *relational* database — the reason the thesis abandoned it
as a MongoDB replacement despite its RISC-V friendliness (§3.3.3.2).
This module gives the row store its native interface: a hand-written
tokenizer and recursive-descent parser for the statement subset the
hotel-style workloads need::

    CREATE TABLE rooms (id, city, rate)
    INSERT INTO rooms (id, city, rate) VALUES ('r1', 'athens', 120)
    SELECT id, rate FROM rooms WHERE city = 'athens' AND rate < 200
    SELECT * FROM rooms ORDER BY rate DESC LIMIT 3
    DELETE FROM rooms WHERE id = 'r1'

Work is metered through the store's receipts like every other access
path, plus a parse cost per statement (the query-engine overhead a
NoSQL point-get skips).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.db.mariadb import MariaDbStore

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^'\\]|\\.)*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<symbol>[(),*=]|<=|>=|<>|!=|<|>)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_]*)"
    r")"
)

_KEYWORDS = {
    "select", "from", "where", "and", "order", "by", "limit", "insert",
    "into", "values", "create", "table", "delete", "asc", "desc",
}


class SqlError(ValueError):
    """Malformed or unsupported SQL."""


def tokenize(text: str) -> List[Tuple[str, str]]:
    """Split a statement into (kind, value) tokens; raises on garbage."""
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlError("cannot tokenize near %r" % remainder[:20])
        position = match.end()
        for kind in ("string", "number", "symbol", "word"):
            value = match.group(kind)
            if value is not None:
                if kind == "word" and value.lower() in _KEYWORDS:
                    tokens.append(("keyword", value.lower()))
                else:
                    tokens.append((kind, value))
                break
    return tokens


class _Parser:
    """Recursive-descent parser over the tokenizer's (kind, text) stream."""

    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of statement")
        self.position += 1
        return token

    def expect_keyword(self, word: str) -> None:
        kind, value = self.next()
        if kind != "keyword" or value != word:
            raise SqlError("expected %s, got %r" % (word.upper(), value))

    def expect_symbol(self, symbol: str) -> None:
        kind, value = self.next()
        if kind != "symbol" or value != symbol:
            raise SqlError("expected %r, got %r" % (symbol, value))

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token == ("keyword", word):
            self.position += 1
            return True
        return False

    def identifier(self) -> str:
        kind, value = self.next()
        if kind != "word":
            raise SqlError("expected identifier, got %r" % value)
        return value

    def literal(self) -> Any:
        kind, value = self.next()
        if kind == "string":
            return value[1:-1].replace("\\'", "'")
        if kind == "number":
            return float(value) if "." in value else int(value)
        raise SqlError("expected literal, got %r" % value)

    def done(self) -> bool:
        return self.position >= len(self.tokens)


_OPERATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}

#: Native instructions charged per parsed statement token (lexer+planner).
_PARSE_COST_PER_TOKEN = 40


class SqlEngine:
    """Executes the supported SQL subset against a MariaDbStore."""

    def __init__(self, store: Optional[MariaDbStore] = None):
        self.store = store or MariaDbStore()
        self.statements_executed = 0

    def execute(self, text: str) -> List[Dict[str, Any]]:
        """Run one statement; SELECTs return rows, others return []."""
        tokens = tokenize(text)
        if not tokens:
            raise SqlError("empty statement")
        self.store.receipt.add(cpu_work=len(tokens) * _PARSE_COST_PER_TOKEN)
        parser = _Parser(tokens)
        kind, value = parser.next()
        if (kind, value) == ("keyword", "select"):
            result = self._select(parser)
        elif (kind, value) == ("keyword", "insert"):
            result = self._insert(parser)
        elif (kind, value) == ("keyword", "create"):
            result = self._create(parser)
        elif (kind, value) == ("keyword", "delete"):
            result = self._delete(parser)
        else:
            raise SqlError("unsupported statement %r" % value)
        if not parser.done():
            raise SqlError("trailing tokens after statement")
        self.statements_executed += 1
        return result

    # -- statements ---------------------------------------------------------

    def _select(self, parser: _Parser) -> List[Dict[str, Any]]:
        columns = self._column_list(parser)
        parser.expect_keyword("from")
        table = parser.identifier()
        predicate = self._where(parser)
        order_key, descending = self._order_by(parser)
        limit = self._limit(parser)

        rows = [row for row in self.store.scan(table) if predicate(row)]
        if order_key is not None:
            rows.sort(key=lambda row: (row.get(order_key) is None,
                                       row.get(order_key)),
                      reverse=descending)
        if limit is not None:
            rows = rows[:limit]
        if columns is None:
            return rows
        return [{column: row.get(column) for column in columns} for row in rows]

    def _insert(self, parser: _Parser) -> List[Dict[str, Any]]:
        parser.expect_keyword("into")
        table = parser.identifier()
        parser.expect_symbol("(")
        columns = [parser.identifier()]
        while parser.peek() == ("symbol", ","):
            parser.next()
            columns.append(parser.identifier())
        parser.expect_symbol(")")
        parser.expect_keyword("values")
        parser.expect_symbol("(")
        values = [parser.literal()]
        while parser.peek() == ("symbol", ","):
            parser.next()
            values.append(parser.literal())
        parser.expect_symbol(")")
        if len(columns) != len(values):
            raise SqlError("%d columns but %d values" % (len(columns), len(values)))
        record = dict(zip(columns, values))
        key = str(record.get("id", "row%06d" % self.store.count(table)))
        self.store.put(table, key, record)
        return []

    def _create(self, parser: _Parser) -> List[Dict[str, Any]]:
        parser.expect_keyword("table")
        table = parser.identifier()
        parser.expect_symbol("(")
        columns = [parser.identifier()]
        while parser.peek() == ("symbol", ","):
            parser.next()
            columns.append(parser.identifier())
        parser.expect_symbol(")")
        if "id" not in columns:
            columns = ["id"] + columns
        self.store.create_table(table, columns, primary_key="id")
        return []

    def _delete(self, parser: _Parser) -> List[Dict[str, Any]]:
        parser.expect_keyword("from")
        table = parser.identifier()
        predicate = self._where(parser)
        victims = [row["id"] for row in self.store.scan(table) if predicate(row)]
        for key in victims:
            self.store.delete(table, str(key))
        return []

    # -- clauses --------------------------------------------------------------

    def _column_list(self, parser: _Parser) -> Optional[List[str]]:
        if parser.peek() == ("symbol", "*"):
            parser.next()
            return None
        columns = [parser.identifier()]
        while parser.peek() == ("symbol", ","):
            parser.next()
            columns.append(parser.identifier())
        return columns

    def _where(self, parser: _Parser):
        if not parser.accept_keyword("where"):
            return lambda row: True
        clauses = [self._comparison(parser)]
        while parser.accept_keyword("and"):
            clauses.append(self._comparison(parser))
        return lambda row: all(clause(row) for clause in clauses)

    def _comparison(self, parser: _Parser):
        column = parser.identifier()
        kind, operator = parser.next()
        if kind != "symbol" or operator not in _OPERATORS:
            raise SqlError("unsupported operator %r" % operator)
        value = parser.literal()
        compare = _OPERATORS[operator]
        return lambda row: compare(row.get(column), value)

    def _order_by(self, parser: _Parser):
        if not parser.accept_keyword("order"):
            return None, False
        parser.expect_keyword("by")
        key = parser.identifier()
        if parser.accept_keyword("desc"):
            return key, True
        parser.accept_keyword("asc")
        return key, False

    def _limit(self, parser: _Parser) -> Optional[int]:
        if not parser.accept_keyword("limit"):
            return None
        value = parser.literal()
        if not isinstance(value, int) or value < 0:
            raise SqlError("LIMIT needs a non-negative integer")
        return value
