"""Memcached-like slab-allocated LRU cache.

The Hotel application's Reservation, Rate and Profile functions consult
Memcached before the primary database and populate it after a miss
(§4.2.1.2) — the back-and-forth the thesis identifies as the source of
their 10x cold-execution slowdown and their excellent warm behaviour.

The engine models the real layout: fixed-size slab classes chosen by item
size, per-slab-class LRU eviction, optional TTL expiry driven by a logical
clock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.db.engine import BootProfile, WorkReceipt, encoded_size

#: Slab class chunk sizes in bytes (growth factor ~2 from 64B to 64KB).
_SLAB_SIZES = [64 << i for i in range(11)]


class MemcachedCache:
    """get/set/delete cache with slab classes and per-class LRU."""

    name = "memcached"
    riscv_friendly = True
    boot_profile = BootProfile(instructions=400_000_000, resident_bytes=8 << 20)

    def __init__(self, capacity_bytes: int = 4 << 20, default_ttl: Optional[int] = None):
        if capacity_bytes < _SLAB_SIZES[-1]:
            raise ValueError("capacity must hold at least one largest chunk")
        self.capacity_bytes = capacity_bytes
        self.default_ttl = default_ttl
        self.clock = 0
        self.receipt = WorkReceipt()
        # slab class -> insertion-ordered {key: (value, chunk, expires_at)}
        self._slabs: Dict[int, Dict[str, Tuple[Any, int, Optional[int]]]] = {
            chunk: {} for chunk in _SLAB_SIZES
        }
        self._key_slab: Dict[str, int] = {}
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def take_receipt(self) -> WorkReceipt:
        harvested = self.receipt
        self.receipt = WorkReceipt()
        return harvested

    def tick(self, amount: int = 1) -> None:
        """Advance the logical clock used for TTL expiry."""
        self.clock += amount

    @staticmethod
    def _chunk_for(size: int) -> int:
        for chunk in _SLAB_SIZES:
            if size <= chunk:
                return chunk
        raise ValueError("item of %d bytes exceeds the largest slab class" % size)

    def set(self, key: str, value: Any, ttl: Optional[int] = None) -> None:
        self.receipt.add(ops=1)
        size = encoded_size(value) + len(key)
        chunk = self._chunk_for(size)
        self.delete(key, quiet=True)
        slab = self._slabs[chunk]
        while self.used_bytes + chunk > self.capacity_bytes and slab:
            self._evict_one(chunk)
        if self.used_bytes + chunk > self.capacity_bytes:
            self._evict_any()
        expiry = ttl if ttl is not None else self.default_ttl
        expires_at = self.clock + expiry if expiry is not None else None
        slab[key] = (value, chunk, expires_at)
        self._key_slab[key] = chunk
        self.used_bytes += chunk
        self.receipt.add(bytes_written=size, serializations=1, cpu_work=size // 16 + 4)

    def get(self, key: str) -> Optional[Any]:
        self.receipt.add(ops=1)
        chunk = self._key_slab.get(key)
        if chunk is None:
            self.misses += 1
            self.receipt.add(structure_misses=1, cpu_work=3)
            return None
        slab = self._slabs[chunk]
        value, _chunk, expires_at = slab[key]
        if expires_at is not None and self.clock >= expires_at:
            self.delete(key, quiet=True)
            self.misses += 1
            self.receipt.add(structure_misses=1, cpu_work=4)
            return None
        # LRU refresh.
        del slab[key]
        slab[key] = (value, chunk, expires_at)
        self.hits += 1
        size = encoded_size(value)
        self.receipt.add(rows_returned=1, bytes_read=size,
                         serializations=1, cpu_work=size // 16 + 3)
        return value

    def get_multi(self, keys) -> Dict[str, Any]:
        """Batched get: one round trip for many keys (the memcached
        ``get_multi`` the DeathStarBench services use for profile reads).

        Charges a single operation plus per-key lookup work; found values
        are returned keyed by their request key.
        """
        self.receipt.add(ops=1)
        found: Dict[str, Any] = {}
        for key in keys:
            chunk = self._key_slab.get(key)
            if chunk is None:
                self.misses += 1
                self.receipt.add(structure_misses=1, cpu_work=3)
                continue
            slab = self._slabs[chunk]
            value, _chunk, expires_at = slab[key]
            if expires_at is not None and self.clock >= expires_at:
                self.delete(key, quiet=True)
                self.misses += 1
                self.receipt.add(structure_misses=1, cpu_work=4)
                continue
            del slab[key]
            slab[key] = (value, chunk, expires_at)
            self.hits += 1
            size = encoded_size(value)
            self.receipt.add(rows_returned=1, bytes_read=size,
                             serializations=1, cpu_work=size // 16 + 3)
            found[key] = value
        return found

    def delete(self, key: str, quiet: bool = False) -> bool:
        chunk = self._key_slab.pop(key, None)
        if chunk is None:
            if not quiet:
                self.receipt.add(structure_misses=1, cpu_work=2)
            return False
        del self._slabs[chunk][key]
        self.used_bytes -= chunk
        if not quiet:
            self.receipt.add(cpu_work=3)
        return True

    def _evict_one(self, chunk: int) -> None:
        slab = self._slabs[chunk]
        victim = next(iter(slab))
        self.delete(victim, quiet=True)
        self.evictions += 1
        self.receipt.add(cpu_work=4)

    def _evict_any(self) -> None:
        for chunk in reversed(_SLAB_SIZES):
            if self._slabs[chunk]:
                self._evict_one(chunk)
                return

    def flush_all(self) -> None:
        for slab in self._slabs.values():
            slab.clear()
        self._key_slab.clear()
        self.used_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._key_slab)

    def keys(self) -> List[str]:
        return list(self._key_slab)

    def __repr__(self) -> str:
        return "MemcachedCache(%d items, %d/%d bytes)" % (
            len(self), self.used_bytes, self.capacity_bytes,
        )
