"""Redis-like in-memory key-value store.

The thesis considered Redis as a MongoDB replacement — it is RISC-V
friendly, boots quickly and is NoSQL — but turned it down because Redis
is rarely used as a *primary* database (§3.3.3.1).  We implement it with
strings, hashes and sorted sets so it can serve either as an alternative
cache (its usual role) or as the primary store in an ablation bench.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.db.engine import BootProfile, Datastore, encoded_size


class RedisStore(Datastore):
    """String/hash/zset store with the Datastore record interface on top."""

    name = "redis"
    riscv_friendly = True
    boot_profile = BootProfile(instructions=600_000_000, resident_bytes=16 << 20)

    def __init__(self):
        super().__init__()
        self._strings: Dict[str, Any] = {}
        self._hashes: Dict[str, Dict[str, Any]] = {}
        self._zsets: Dict[str, List[Tuple[float, str]]] = {}

    # -- string commands ------------------------------------------------------

    def set_value(self, key: str, value: Any) -> None:
        size = encoded_size(value)
        self._strings[key] = value
        self.receipt.add(bytes_written=size, cpu_work=size // 16 + 2)

    def get_value(self, key: str) -> Optional[Any]:
        value = self._strings.get(key)
        if value is None:
            self.receipt.add(structure_misses=1, cpu_work=2)
            return None
        self.receipt.add(bytes_read=encoded_size(value), rows_returned=1, cpu_work=3)
        return value

    # -- hash commands -----------------------------------------------------------

    def hset(self, key: str, field: str, value: Any) -> None:
        self._hashes.setdefault(key, {})[field] = value
        self.receipt.add(bytes_written=encoded_size(value), cpu_work=3)

    def hget(self, key: str, field: str) -> Optional[Any]:
        value = self._hashes.get(key, {}).get(field)
        if value is None:
            self.receipt.add(structure_misses=1, cpu_work=2)
            return None
        self.receipt.add(bytes_read=encoded_size(value), rows_returned=1, cpu_work=3)
        return value

    def hgetall(self, key: str) -> Dict[str, Any]:
        mapping = dict(self._hashes.get(key, {}))
        self.receipt.add(bytes_read=encoded_size(mapping), cpu_work=4 + len(mapping))
        return mapping

    # -- sorted sets (used by geo-style nearest queries) ----------------------------

    def zadd(self, key: str, score: float, member: str) -> None:
        entries = self._zsets.setdefault(key, [])
        entries[:] = [(s, m) for s, m in entries if m != member]
        bisect.insort(entries, (score, member))
        self.receipt.add(cpu_work=6)

    def zrange_by_score(self, key: str, low: float, high: float) -> List[str]:
        entries = self._zsets.get(key, [])
        start = bisect.bisect_left(entries, (low, ""))
        out = []
        for score, member in entries[start:]:
            if score > high:
                break
            out.append(member)
        self.receipt.add(rows_scanned=len(out), rows_returned=len(out),
                         cpu_work=4 + len(out))
        return out

    # -- Datastore record interface (hash per record) ---------------------------------

    @staticmethod
    def _record_key(table: str, key: str) -> str:
        return "%s:%s" % (table, key)

    def put(self, table: str, key: str, record: Dict[str, Any]) -> None:
        record_key = self._record_key(table, key)
        self.receipt.add(ops=1)
        self._hashes[record_key] = dict(record)
        self._zsets.setdefault("keys:%s" % table, [])
        self.zadd("keys:%s" % table, 0.0, key)
        self.receipt.add(bytes_written=encoded_size(record), serializations=1,
                         cpu_work=encoded_size(record) // 16 + 4)

    def get(self, table: str, key: str) -> Optional[Dict[str, Any]]:
        self.receipt.add(ops=1)
        record = self._hashes.get(self._record_key(table, key))
        if record is None:
            self.receipt.add(structure_misses=1, cpu_work=2)
            return None
        self.receipt.add(bytes_read=encoded_size(record), rows_returned=1,
                         serializations=1, cpu_work=encoded_size(record) // 16 + 2)
        return dict(record)

    def delete(self, table: str, key: str) -> bool:
        record_key = self._record_key(table, key)
        self.receipt.add(ops=1)
        if record_key not in self._hashes:
            self.receipt.add(structure_misses=1)
            return False
        del self._hashes[record_key]
        entries = self._zsets.get("keys:%s" % table, [])
        entries[:] = [(s, m) for s, m in entries if m != key]
        self.receipt.add(cpu_work=5)
        return True

    def scan(self, table: str) -> Iterator[Dict[str, Any]]:
        self.receipt.add(ops=1)
        for _score, key in list(self._zsets.get("keys:%s" % table, [])):
            record = self._hashes.get(self._record_key(table, key))
            if record is not None:
                self.receipt.add(rows_scanned=1, bytes_read=encoded_size(record),
                                 cpu_work=4)
                yield dict(record)

    def query(self, table: str, **equals: Any) -> List[Dict[str, Any]]:
        results = []
        for record in self.scan(table):
            if all(record.get(field) == value for field, value in equals.items()):
                self.receipt.add(rows_returned=1, serializations=1)
                results.append(record)
        return results

    def data_bytes(self) -> int:
        total = sum(encoded_size(value) for value in self._strings.values())
        total += sum(encoded_size(mapping) for mapping in self._hashes.values())
        total += sum(16 * len(entries) for entries in self._zsets.values())
        return total
