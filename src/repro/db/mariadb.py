"""MariaDB-like relational store.

The thesis ported the Hotel application to MariaDB too — it boots far
faster than Cassandra on RISC-V and the port was straightforward — but
abandoned it because it is a *relational* database and the goal was a
NoSQL drop-in for MongoDB (§3.3.3.2).  We keep it: it backs an ablation
bench and an example, and exercises a schema'd row-store code path.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.db.engine import BootProfile, Datastore, encoded_size


class TableSchema:
    """Column definitions for one table."""

    def __init__(self, columns: Sequence[str], primary_key: str = "id"):
        if primary_key not in columns:
            raise ValueError("primary key %r not among columns %r" % (primary_key, columns))
        self.columns = tuple(columns)
        self.primary_key = primary_key

    def validate(self, record: Dict[str, Any]) -> None:
        unknown = set(record) - set(self.columns)
        if unknown:
            raise ValueError("unknown columns %s (schema has %s)" % (sorted(unknown), self.columns))


class _Table:
    """Row storage for one schema: a list plus a primary-key index."""

    __slots__ = ("schema", "rows", "pk_index")

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: Dict[str, Dict[str, Any]] = {}
        self.pk_index: List[str] = []


class MariaDbStore(Datastore):
    """Row store with schemas, a clustered PK index, and WHERE filters."""

    name = "mariadb"
    riscv_friendly = True  # "a RISC-V friendly database" per the thesis
    boot_profile = BootProfile(
        instructions=19_000_000_000, resident_bytes=192 << 20, jvm=False
    )

    def __init__(self):
        super().__init__()
        self._tables: Dict[str, _Table] = {}

    def create_table(self, name: str, columns: Sequence[str], primary_key: str = "id") -> None:
        if name in self._tables:
            raise ValueError("table %r already exists" % name)
        self._tables[name] = _Table(TableSchema(columns, primary_key))
        self.receipt.add(cpu_work=50)

    def _table(self, name: str) -> _Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                "no table %r: relational stores require CREATE TABLE first" % name
            ) from None

    # -- Datastore interface: auto-creates a permissive schema if needed -----

    def put(self, table: str, key: str, record: Dict[str, Any]) -> None:
        if table not in self._tables:
            columns = sorted(set(record) | {"id"})
            self.create_table(table, columns, primary_key="id")
        tbl = self._table(table)
        self.receipt.add(ops=1)
        row = dict(record)
        row.setdefault("id", key)
        tbl.schema.validate(row)
        size = encoded_size(row)
        if key not in tbl.rows:
            bisect.insort(tbl.pk_index, key)
        tbl.rows[key] = row
        self.receipt.add(index_probes=2, bytes_written=size,
                         serializations=1, cpu_work=size // 8 + 10)

    def get(self, table: str, key: str) -> Optional[Dict[str, Any]]:
        if table not in self._tables:
            return None
        tbl = self._table(table)
        self.receipt.add(ops=1, index_probes=2, cpu_work=10)
        row = tbl.rows.get(key)
        if row is None:
            self.receipt.add(structure_misses=1)
            return None
        size = encoded_size(row)
        self.receipt.add(rows_scanned=1, rows_returned=1, bytes_read=size,
                         serializations=1, cpu_work=size // 8)
        return dict(row)

    def delete(self, table: str, key: str) -> bool:
        if table not in self._tables:
            return False
        tbl = self._table(table)
        self.receipt.add(ops=1, index_probes=2, cpu_work=10)
        if key not in tbl.rows:
            self.receipt.add(structure_misses=1)
            return False
        del tbl.rows[key]
        position = bisect.bisect_left(tbl.pk_index, key)
        del tbl.pk_index[position]
        return True

    def scan(self, table: str) -> Iterator[Dict[str, Any]]:
        if table not in self._tables:
            return
        tbl = self._table(table)
        self.receipt.add(ops=1)
        for key in list(tbl.pk_index):
            row = tbl.rows[key]
            self.receipt.add(rows_scanned=1, bytes_read=encoded_size(row), cpu_work=6)
            yield dict(row)

    def query(self, table: str, **equals: Any) -> List[Dict[str, Any]]:
        """SELECT * FROM table WHERE col = val AND ... (no secondary index)."""
        results = []
        for row in self.scan(table):
            if all(row.get(column) == value for column, value in equals.items()):
                self.receipt.add(rows_returned=1, serializations=1)
                results.append(row)
        return results

    def select(self, table: str, columns: Sequence[str], **equals: Any) -> List[Dict[str, Any]]:
        """Projection + filter, the closest thing to real SQL we need."""
        tbl = self._table(table)
        missing = set(columns) - set(tbl.schema.columns)
        if missing:
            raise ValueError("unknown columns in select: %s" % sorted(missing))
        return [
            {column: row.get(column) for column in columns}
            for row in self.query(table, **equals)
        ]

    def data_bytes(self) -> int:
        return sum(
            encoded_size(row)
            for table in self._tables.values()
            for row in table.rows.values()
        )

    def tables(self) -> List[str]:
        return sorted(self._tables)
