"""A multi-node Cassandra cluster: partitioning and replication.

The thesis tuned ``num-of-tokens`` and ``num-of-nodes`` trying to tame
Cassandra's RISC-V boot times (§3.3.3.2); this module makes those knobs
real.  A :class:`CassandraCluster` hashes every key onto a token ring of
virtual nodes (``num_tokens`` per physical node), stores ``replication``
copies clockwise around the ring, and serves reads at a configurable
consistency level — including after node failures, which is the point of
running Cassandra at all.

The cluster satisfies the :class:`~repro.db.engine.Datastore` interface,
so it drops into the Hotel suite wherever a single store does.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.db.cassandra import CassandraStore
from repro.db.engine import Datastore, WorkReceipt
# One error taxonomy for node loss: the cluster serving platform and
# this datastore cluster raise the same type, driven by the same
# ``cluster.node_down`` fault site (re-exported here for back-compat —
# ``repro.db.NodeDownError`` predates ``repro.faults.NodeDownError``).
from repro.faults.plan import NodeDownError

__all__ = ["CassandraCluster", "NodeDownError"]

_RING_SPACE = 2 ** 32


def _token(value: str) -> int:
    return zlib.crc32(value.encode()) % _RING_SPACE


class CassandraCluster(Datastore):
    """Token-ring cluster of CassandraStore nodes."""

    name = "cassandra"  # drop-in for the single-node store
    riscv_friendly = True
    boot_profile = CassandraStore.boot_profile

    def __init__(self, nodes: int = 3, num_tokens: int = 16,
                 replication: int = 2, consistency: str = "ONE"):
        super().__init__()
        if nodes < 1:
            raise ValueError("cluster needs at least one node")
        if not 1 <= replication <= nodes:
            raise ValueError("replication must be within [1, nodes]")
        if consistency not in ("ONE", "QUORUM", "ALL"):
            raise ValueError("consistency must be ONE, QUORUM or ALL")
        self.num_nodes = nodes
        self.num_tokens = num_tokens
        self.replication = replication
        self.consistency = consistency
        self.nodes: List[CassandraStore] = [
            CassandraStore(num_tokens=num_tokens) for _ in range(nodes)
        ]
        self._up = [True] * nodes
        # Token ring: (token, node_index), num_tokens vnodes per node.
        ring: List[Tuple[int, int]] = []
        for node_index in range(nodes):
            for vnode in range(num_tokens):
                ring.append((_token("node%d-vnode%d" % (node_index, vnode)),
                             node_index))
        self._ring = sorted(ring)
        self._ring_tokens = [token for token, _node in self._ring]
        #: Optional :class:`~repro.faults.FaultInjector`; every operation
        #: then draws at ``cluster.node_down`` and a fire takes a live
        #: node down before the consistency check runs — the same site
        #: and error type the serverless cluster platform uses.  Same
        #: guard-on-``None`` discipline as the tracer.
        self.faults = None

    # -- topology -------------------------------------------------------------

    def replicas_for(self, key: str) -> List[int]:
        """The distinct nodes holding a key, walking the ring clockwise."""
        start = bisect.bisect(self._ring_tokens, _token(key)) % len(self._ring)
        owners: List[int] = []
        position = start
        while len(owners) < self.replication:
            node = self._ring[position][1]
            if node not in owners:
                owners.append(node)
            position = (position + 1) % len(self._ring)
        return owners

    def _required_acks(self) -> int:
        if self.consistency == "ONE":
            return 1
        if self.consistency == "QUORUM":
            return self.replication // 2 + 1
        return self.replication

    def fail_node(self, index: int) -> None:
        self._up[index] = False

    def recover_node(self, index: int) -> None:
        self._up[index] = True

    def live_nodes(self) -> int:
        return sum(self._up)

    def _live_replicas(self, key: str) -> List[int]:
        return [node for node in self.replicas_for(key) if self._up[node]]

    def _maybe_node_down(self) -> None:
        """Injected node failure: one deterministic draw per operation.

        A fire takes down the highest-indexed live node (a fixed, seed-
        independent victim rule keeps the outcome a pure function of the
        injector's draws).  The node stays down until
        :meth:`recover_node` — subsequent operations then surface
        :class:`~repro.faults.NodeDownError` wherever the replica count
        no longer meets the consistency level.
        """
        faults = self.faults
        if faults is None or not faults.should_fire("cluster.node_down"):
            return
        for index in range(self.num_nodes - 1, -1, -1):
            if self._up[index]:
                self.fail_node(index)
                return

    # -- metering: fold node receipts into the cluster's ----------------------

    def _absorb(self, node_index: int) -> None:
        self.receipt.merge(self.nodes[node_index].take_receipt())
        # Coordinator hop per replica contact.
        self.receipt.add(cpu_work=20)

    # -- Datastore interface --------------------------------------------------

    def put(self, table: str, key: str, record: Dict[str, Any]) -> None:
        self._maybe_node_down()
        live = self._live_replicas(key)
        required = self._required_acks()
        if len(live) < required:
            raise NodeDownError(
                "write %r needs %d acks, only %d replicas up"
                % (key, required, len(live))
            )
        self.receipt.add(ops=1)  # coordinator round trip
        for node_index in self._live_replicas(key):
            self.nodes[node_index].put(table, key, record)
            self._absorb(node_index)

    def get(self, table: str, key: str) -> Optional[Dict[str, Any]]:
        self._maybe_node_down()
        live = self._live_replicas(key)
        required = self._required_acks()
        if len(live) < required:
            raise NodeDownError(
                "read %r needs %d replicas, only %d up"
                % (key, required, len(live))
            )
        self.receipt.add(ops=1)
        result: Optional[Dict[str, Any]] = None
        for node_index in live[:required]:
            candidate = self.nodes[node_index].get(table, key)
            self._absorb(node_index)
            if candidate is not None:
                result = candidate
        return result

    def delete(self, table: str, key: str) -> bool:
        self._maybe_node_down()
        live = self._live_replicas(key)
        if len(live) < self._required_acks():
            raise NodeDownError("delete %r: not enough replicas up" % key)
        self.receipt.add(ops=1)
        existed = False
        for node_index in live:
            existed = self.nodes[node_index].delete(table, key) or existed
            self._absorb(node_index)
        return existed

    def scan(self, table: str) -> Iterator[Dict[str, Any]]:
        self._maybe_node_down()
        self.receipt.add(ops=1)
        seen: Dict[str, Dict[str, Any]] = {}
        for node_index, node in enumerate(self.nodes):
            if not self._up[node_index]:
                continue
            for row in node.scan(table):
                seen[self._row_key(row)] = row
            self._absorb(node_index)
        for key in sorted(seen):
            yield seen[key]

    @staticmethod
    def _row_key(row: Dict[str, Any]) -> str:
        import json

        return json.dumps(row, sort_keys=True, default=str)

    def query(self, table: str, **equals: Any) -> List[Dict[str, Any]]:
        results = []
        for row in self.scan(table):
            if all(row.get(field) == value for field, value in equals.items()):
                self.receipt.add(rows_returned=1, serializations=1)
                results.append(row)
        return results

    def flush_all(self) -> None:
        for node in self.nodes:
            node.flush_all()

    def data_bytes(self) -> int:
        return sum(node.data_bytes() for node in self.nodes)

    def __repr__(self) -> str:
        return "CassandraCluster(%d nodes, RF=%d, %s, %d up)" % (
            self.num_nodes, self.replication, self.consistency,
            self.live_nodes(),
        )
