"""Shared datastore machinery: work metering and encoding.

Stores are *functional* — they really hold and return data — and *metered*:
every operation accumulates counts of the physical work performed (index
probes, rows scanned, bytes moved, CPU work units).  The Hotel workload
models read these receipts to build the IR programs whose execution the
simulator times, so a query that walked three SSTables costs more cycles
than one absorbed by the memtable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional


class WorkReceipt:
    """Physical work performed by one or more datastore operations."""

    FIELDS = (
        "ops",
        "index_probes",
        "rows_scanned",
        "rows_returned",
        "bytes_read",
        "bytes_written",
        "serializations",
        "cpu_work",
        "structure_misses",  # bloom-filter negatives, empty memtable probes
    )

    __slots__ = FIELDS

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def add(self, **amounts: int) -> None:
        for field, amount in amounts.items():
            if field not in self.FIELDS:
                raise KeyError("unknown receipt field %r" % field)
            setattr(self, field, getattr(self, field) + amount)

    def merge(self, other: "WorkReceipt") -> None:
        for field in self.FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "WorkReceipt":
        receipt = cls()
        for field in cls.FIELDS:
            setattr(receipt, field, data.get(field, 0))
        return receipt

    def __repr__(self) -> str:
        busy = ", ".join(
            "%s=%d" % (field, getattr(self, field))
            for field in self.FIELDS
            if getattr(self, field)
        )
        return "WorkReceipt(%s)" % (busy or "idle")


def encoded_size(value: Any) -> int:
    """Approximate wire/storage size of a value (JSON-encoded bytes)."""
    return len(json.dumps(value, separators=(",", ":"), sort_keys=True, default=str))


class BootProfile:
    """How expensive it is to boot this store's container.

    ``instructions`` is the dynamic instruction count of the boot path at
    native scale; ``jvm`` marks JVM-hosted stores whose interpreter/JIT
    start-up is what made Cassandra's QEMU RISC-V boots take ~17 minutes
    versus MongoDB's ~3-4 on x86 (§3.3.3.2).
    """

    def __init__(self, instructions: int, resident_bytes: int, jvm: bool = False):
        self.instructions = instructions
        self.resident_bytes = resident_bytes
        self.jvm = jvm

    def __repr__(self) -> str:
        return "BootProfile(%.0fM instrs%s)" % (
            self.instructions / 1e6, ", jvm" if self.jvm else "",
        )


class Datastore:
    """Base class for the primary datastores.

    Subclasses implement the storage engine; this class provides the
    metering protocol: :attr:`receipt` accumulates work until
    :meth:`take_receipt` harvests and resets it.
    """

    name = "datastore"
    #: True where a maintained RISC-V port existed during the thesis work.
    riscv_friendly = False
    boot_profile = BootProfile(instructions=5_000_000_000, resident_bytes=64 << 20)

    def __init__(self):
        self.receipt = WorkReceipt()

    def take_receipt(self) -> WorkReceipt:
        """Harvest the work performed since the last harvest."""
        harvested = self.receipt
        self.receipt = WorkReceipt()
        return harvested

    # -- storage interface (dict-of-fields records keyed by string ids) -----

    def put(self, table: str, key: str, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def get(self, table: str, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def delete(self, table: str, key: str) -> bool:
        raise NotImplementedError

    def scan(self, table: str) -> Iterator[Dict[str, Any]]:
        raise NotImplementedError

    def query(self, table: str, **equals: Any) -> list:
        """Filter scan on field equality (ad-hoc query path)."""
        raise NotImplementedError

    def count(self, table: str) -> int:
        return sum(1 for _ in self.scan(table))

    def data_bytes(self) -> int:
        """Total resident payload bytes (drives the simulated footprint)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__
