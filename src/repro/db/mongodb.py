"""MongoDB-like document store.

Collections of JSON-ish documents with a primary-key B-tree-style index
and optional secondary indexes; supports the ad-hoc equality queries the
Hotel application issues.  MongoDB has no RISC-V port ("not a RISC-V
friendly database", §3.3.3), which is why the thesis swapped it for
Cassandra on that platform — but it remains the x86 baseline and one side
of the Fig 4.20 comparison.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional

from repro.db.engine import BootProfile, Datastore, encoded_size

_BTREE_FANOUT = 128


class _Collection:
    """One collection: documents plus a sorted primary index."""

    __slots__ = ("documents", "sorted_keys", "secondary")

    def __init__(self):
        self.documents: Dict[str, Dict[str, Any]] = {}
        self.sorted_keys: List[str] = []
        self.secondary: Dict[str, Dict[Any, List[str]]] = {}


class MongoStore(Datastore):
    """Document-oriented store with B-tree index cost accounting."""

    name = "mongodb"
    riscv_friendly = False
    #: mongod starts reasonably fast; native C++ binary, no JVM warm-up.
    boot_profile = BootProfile(
        instructions=12_000_000_000, resident_bytes=96 << 20, jvm=False
    )

    def __init__(self):
        super().__init__()
        self._collections: Dict[str, _Collection] = {}

    def _collection(self, table: str) -> _Collection:
        if table not in self._collections:
            self._collections[table] = _Collection()
        return self._collections[table]

    def _btree_depth(self, collection: _Collection) -> int:
        entries = max(2, len(collection.sorted_keys))
        depth = 1
        capacity = _BTREE_FANOUT
        while capacity < entries:
            capacity *= _BTREE_FANOUT
            depth += 1
        return depth

    # -- CRUD -----------------------------------------------------------------

    def put(self, table: str, key: str, record: Dict[str, Any]) -> None:
        collection = self._collection(table)
        self.receipt.add(ops=1)
        size = encoded_size(record)
        depth = self._btree_depth(collection)
        if key not in collection.documents:
            bisect.insort(collection.sorted_keys, key)
        else:
            self._unindex(collection, key)
        collection.documents[key] = dict(record)
        for field, index in collection.secondary.items():
            index.setdefault(record.get(field), []).append(key)
        self.receipt.add(
            index_probes=depth,
            bytes_written=size,
            serializations=1,
            cpu_work=size // 8 + depth * 4,
        )

    def get(self, table: str, key: str) -> Optional[Dict[str, Any]]:
        collection = self._collection(table)
        self.receipt.add(ops=1)
        depth = self._btree_depth(collection)
        document = collection.documents.get(key)
        if document is None:
            self.receipt.add(index_probes=depth, structure_misses=1, cpu_work=depth * 4)
            return None
        size = encoded_size(document)
        self.receipt.add(
            index_probes=depth,
            rows_scanned=1,
            rows_returned=1,
            bytes_read=size + 256 * depth,  # mmap'd B-tree page touches
            serializations=1,
            cpu_work=size // 8 + depth * 4,
        )
        return dict(document)

    def delete(self, table: str, key: str) -> bool:
        collection = self._collection(table)
        self.receipt.add(ops=1)
        depth = self._btree_depth(collection)
        self.receipt.add(index_probes=depth, cpu_work=depth * 4)
        if key not in collection.documents:
            self.receipt.add(structure_misses=1)
            return False
        self._unindex(collection, key)
        del collection.documents[key]
        position = bisect.bisect_left(collection.sorted_keys, key)
        del collection.sorted_keys[position]
        return True

    def _unindex(self, collection: _Collection, key: str) -> None:
        old = collection.documents.get(key)
        if old is None:
            return
        for field, index in collection.secondary.items():
            keys = index.get(old.get(field))
            if keys and key in keys:
                keys.remove(key)

    # -- queries ------------------------------------------------------------------

    def create_index(self, table: str, field: str) -> None:
        """Build a secondary index over an existing collection."""
        collection = self._collection(table)
        index: Dict[Any, List[str]] = {}
        for key, document in collection.documents.items():
            index.setdefault(document.get(field), []).append(key)
            self.receipt.add(rows_scanned=1, cpu_work=4)
        collection.secondary[field] = index

    def query(self, table: str, **equals: Any) -> List[Dict[str, Any]]:
        collection = self._collection(table)
        self.receipt.add(ops=1)
        if not equals:
            return [dict(document) for document in self.scan(table)]
        # Use a secondary index for the first indexed field, if any.
        for field, wanted in equals.items():
            index = collection.secondary.get(field)
            if index is not None:
                keys = index.get(wanted, [])
                depth = self._btree_depth(collection)
                self.receipt.add(index_probes=depth, cpu_work=depth * 4)
                results = []
                for key in keys:
                    document = collection.documents[key]
                    if all(document.get(f) == v for f, v in equals.items()):
                        size = encoded_size(document)
                        self.receipt.add(
                            rows_scanned=1, rows_returned=1,
                            bytes_read=size, serializations=1, cpu_work=size // 8,
                        )
                        results.append(dict(document))
                return results
        # COLLSCAN: the ad-hoc query path MongoDB is known for.
        results = []
        for document in collection.documents.values():
            size = encoded_size(document)
            self.receipt.add(rows_scanned=1, bytes_read=size, cpu_work=size // 16)
            if all(document.get(f) == v for f, v in equals.items()):
                self.receipt.add(rows_returned=1, serializations=1)
                results.append(dict(document))
        return results

    def scan(self, table: str) -> Iterator[Dict[str, Any]]:
        collection = self._collection(table)
        self.receipt.add(ops=1)
        for key in list(collection.sorted_keys):
            document = collection.documents[key]
            self.receipt.add(
                rows_scanned=1, bytes_read=encoded_size(document), cpu_work=8
            )
            yield dict(document)

    def data_bytes(self) -> int:
        return sum(
            encoded_size(document)
            for collection in self._collections.values()
            for document in collection.documents.values()
        )
