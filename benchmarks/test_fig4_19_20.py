"""Fig 4.19: hotel RISC-V vs x86; Fig 4.20: MongoDB vs Cassandra (QEMU)."""

from conftest import HOTEL_ORDER, run_once, write_output

from repro.core.results import MeasurementTable, isa_comparison_table

HOTEL_SHORT = ["geo", "recommendation", "user", "reservation", "rate", "profile"]


def test_fig4_19_hotel_isa_comparison(benchmark, riscv_hotel, x86_hotel):
    """Fig 4.19: hotel cycles, RISC-V vs x86."""

    def build():
        return isa_comparison_table(
            "Fig 4.19: cycles, hotel application, RISC-V vs x86",
            riscv_hotel, x86_hotel,
            metric=lambda stats: stats.cycles,
            order=HOTEL_ORDER, metric_name="cycles",
        )

    table = run_once(benchmark, build)
    write_output("fig4_19.txt", table.render() + "\n\n" + table.render_chart())

    # "In Hotel we continue to see RISCV performing better on most occasions."
    wins = sum(
        1 for name in HOTEL_ORDER
        if riscv_hotel[name].cold.cycles < x86_hotel[name].cold.cycles
        and riscv_hotel[name].warm.cycles < x86_hotel[name].warm.cycles
    )
    assert wins >= len(HOTEL_ORDER) - 1
    # "neither architecture can perform well in the cold execution."
    for name in HOTEL_ORDER:
        assert riscv_hotel[name].cold.cycles > 3 * riscv_hotel[name].warm.cycles
        assert x86_hotel[name].cold.cycles > 3 * x86_hotel[name].warm.cycles
    # "the cold RISCV profile benchmark that has the worst performance of
    # all the [RISC-V hotel] workloads is the quickest in warm executions."
    riscv_cold = {name: riscv_hotel[name].cold.cycles for name in HOTEL_ORDER}
    riscv_warm = {name: riscv_hotel[name].warm.cycles for name in HOTEL_ORDER}
    assert max(riscv_cold, key=riscv_cold.get) == "hotel-profile-go"
    assert min(riscv_warm, key=riscv_warm.get) == "hotel-profile-go"


def test_fig4_20_mongodb_vs_cassandra(benchmark, qemu_db_comparison):
    """Fig 4.20: request time under QEMU (x86), MongoDB vs Cassandra.

    "MongoDB appears to have shorter times in cold executions.  However,
    we cannot say that this also happens to a substantial extent in the
    warm execution."
    """

    def build():
        table = MeasurementTable(
            "Fig 4.20: MongoDB vs Cassandra request time under QEMU x86 (ns)",
            ["cass_cold", "cass_warm", "mongo_cold", "mongo_warm"],
        )
        for short in HOTEL_SHORT:
            cass_cold, cass_warm = qemu_db_comparison[("cassandra", short)]
            mongo_cold, mongo_warm = qemu_db_comparison[("mongodb", short)]
            table.add_row(short, round(cass_cold), round(cass_warm),
                          round(mongo_cold), round(mongo_warm))
        return table

    table = run_once(benchmark, build)
    write_output("fig4_20.txt", table.render() + "\n\n" + table.render_chart())

    for short in HOTEL_SHORT:
        cass_cold, cass_warm = qemu_db_comparison[("cassandra", short)]
        mongo_cold, mongo_warm = qemu_db_comparison[("mongodb", short)]
        # MongoDB shorter cold everywhere.
        assert mongo_cold < cass_cold, short
        # Warm difference is NOT substantial: within 25%.
        assert abs(cass_warm - mongo_warm) < 0.25 * max(cass_warm, mongo_warm), short
