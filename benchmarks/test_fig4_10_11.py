"""Figs 4.10 / 4.11: all Go functions on RISC-V — cycles and L2 misses.

The paper plots the Go standalone functions next to the hotel suite to
show the Memcached-dependent subgroup's ~10x slowdown and pins it on L2
misses ("they frequently experience the costly process of accessing the
main memory", §4.2.1.2).
"""

import statistics

from conftest import run_once, write_output

from repro.core.results import MeasurementTable

GO_STANDALONE = ["fibonacci-go", "aes-go", "auth-go"]
HOTEL_TRIO = ["hotel-reservation-go", "hotel-rate-go", "hotel-profile-go"]
HOTEL_PLAIN = ["hotel-geo-go", "hotel-recommendation-go", "hotel-user-go"]


def _go_table(title, metric_name, metric, riscv_standalone_shop, riscv_hotel):
    table = MeasurementTable(title, ["cold_%s" % metric_name, "warm_%s" % metric_name])
    for name in GO_STANDALONE:
        m = riscv_standalone_shop[name]
        table.add_row(name, metric(m.cold), metric(m.warm))
    for name in HOTEL_PLAIN + HOTEL_TRIO:
        m = riscv_hotel[name]
        table.add_row(name, metric(m.cold), metric(m.warm))
    return table


def test_fig4_10_go_cycles(benchmark, riscv_standalone_shop, riscv_hotel):
    """Fig 4.10: cycles for the Go functions (RISC-V)."""
    table = run_once(benchmark, lambda: _go_table(
        "Fig 4.10: cycles, Go functions (RISC-V)", "cycles",
        lambda stats: stats.cycles, riscv_standalone_shop, riscv_hotel))
    write_output("fig4_10.txt", table.render() + "\n\n" + table.render_chart())

    standalone_cold = statistics.mean(
        riscv_standalone_shop[name].cold.cycles for name in GO_STANDALONE
    )
    trio_cold = statistics.mean(riscv_hotel[name].cold.cycles for name in HOTEL_TRIO)
    # The Memcached subgroup exhibits roughly a 10x slowdown relative to
    # the other Go benchmarks.
    assert trio_cold > 5 * standalone_cold


def test_fig4_11_go_l2_misses(benchmark, riscv_standalone_shop, riscv_hotel):
    """Fig 4.11: L2 misses for the Go functions (RISC-V)."""
    table = run_once(benchmark, lambda: _go_table(
        "Fig 4.11: L2 misses, Go functions (RISC-V)", "l2",
        lambda stats: stats.l2_misses, riscv_standalone_shop, riscv_hotel))
    write_output("fig4_11.txt", table.render() + "\n\n" + table.render_chart())

    standalone_l2 = statistics.mean(
        riscv_standalone_shop[name].cold.l2_misses for name in GO_STANDALONE
    )
    trio_l2 = statistics.mean(riscv_hotel[name].cold.l2_misses for name in HOTEL_TRIO)
    # "Those functions get plenty of L2 misses" — the slowdown's cause.
    assert trio_l2 > 3 * standalone_l2
    # L2 misses collapse warm (the paper's warm bars are tiny).
    for name in HOTEL_TRIO:
        assert riscv_hotel[name].warm.l2_misses < \
            riscv_hotel[name].cold.l2_misses / 10
