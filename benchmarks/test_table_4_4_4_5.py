"""Tables 4.4 / 4.5: container compressed sizes."""

from conftest import run_once, write_output

from repro.core.results import MeasurementTable
from repro.workloads.catalog import (
    HOTEL_FUNCTIONS,
    NATHEESAN_RISCV_SIZES_MB,
    ONLINESHOP_FUNCTIONS,
    STANDALONE_FUNCTIONS,
)

ALL_FUNCTIONS = STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS + HOTEL_FUNCTIONS

#: Measured values from the thesis's Table 4.4 (MB), used as the
#: calibration reference; our images must land within tolerance.
PAPER_TABLE_4_4 = {
    "fibonacci-go": (8.39, 7.76), "fibonacci-python": (99.40, 132.62),
    "fibonacci-nodejs": (58.43, 35.16),
    "aes-go": (8.67, 8.04), "aes-python": (99.45, 132.67),
    "aes-nodejs": (57.11, 35.42),
    "auth-go": (8.67, 8.04), "auth-python": (99.40, 132.62),
    "auth-nodejs": (70.50, 48.81),
    "productcatalogservice-go": (10.81, 10.33),
    "shippingservice-go": (10.80, 10.30),
    "recommendationservice-python": (108.09, 114.68),
    "emailservice-python": (107.70, 114.46),
    "currencyservice-nodejs": (60.12, 38.44),
    "paymentservice-nodejs": (59.04, 80.64),
    "hotel-geo-go": (8.17, 7.76), "hotel-recommendation-go": (8.14, 7.74),
    "hotel-user-go": (8.12, 7.73), "hotel-reservation-go": (8.18, 7.79),
    "hotel-rate-go": (8.18, 7.79), "hotel-profile-go": (8.19, 7.79),
}


def test_table_4_4_container_sizes(benchmark):
    """Table 4.4: compressed container sizes, x86 vs RISC-V."""

    def build():
        table = MeasurementTable("Table 4.4: container compressed size (MB)",
                                 ["x86_mb", "riscv_mb"])
        sizes = {}
        for function in ALL_FUNCTIONS:
            x86 = function.image("x86").compressed_size_mb
            riscv = function.image("riscv").compressed_size_mb
            sizes[function.name] = (x86, riscv)
            table.add_row(function.name, round(x86, 2), round(riscv, 2))
        return sizes, table

    sizes, table = run_once(benchmark, build)
    write_output("table4_4.txt", table.render())

    for name, (paper_x86, paper_riscv) in PAPER_TABLE_4_4.items():
        x86, riscv = sizes[name]
        assert abs(x86 - paper_x86) / paper_x86 < 0.12, (name, x86, paper_x86)
        assert abs(riscv - paper_riscv) / paper_riscv < 0.12, (name, riscv, paper_riscv)

    # Structural claims of §4.2.5:
    go = [sizes[fn.name] for fn in ALL_FUNCTIONS if fn.runtime_name == "go"]
    python = [sizes[fn.name] for fn in ALL_FUNCTIONS if fn.runtime_name == "python"]
    nodejs = [sizes[fn.name] for fn in ALL_FUNCTIONS if fn.runtime_name == "nodejs"]
    # "the Go runtime containers are the lightest; NodeJs come second and
    # the Python ones come last."
    assert max(mb for pair in go for mb in pair) < \
        min(mb for pair in nodejs for mb in pair)
    assert max(x86 for x86, _r in nodejs) < min(x86 for x86, _r in python)
    # RISC-V Python images outweigh their x86 counterparts.
    assert all(riscv > x86 for x86, riscv in python)


def test_table_4_5_natheesan_comparison(benchmark):
    """Table 4.5: our RISC-V images vs the Natheesan Docker Hub builds."""

    def build():
        table = MeasurementTable(
            "Table 4.5: RISC-V container sizes (MB), Natheesan vs GPour",
            ["natheesan_mb", "gpour_mb"],
        )
        ours = {}
        for function in STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS:
            key = function.name
            ours[key] = function.image("riscv").compressed_size_mb
            table.add_row(key, NATHEESAN_RISCV_SIZES_MB[key], round(ours[key], 2))
        return ours, table

    ours, table = run_once(benchmark, build)
    write_output("table4_5.txt", table.render())

    # The hotel images are not reported: the Natheesan builds tried to
    # reach a MongoDB that has no RISC-V port (§4.2.6).
    assert all(not name.startswith("hotel-") for name in NATHEESAN_RISCV_SIZES_MB)
    # Our Python images are far smaller than the Natheesan ones (the
    # prebuilt-gRPC base paid off)...
    for name, theirs in NATHEESAN_RISCV_SIZES_MB.items():
        if "python" in name:
            assert ours[name] < 0.6 * theirs, name
    # ...while their Go standalone images edge ours out slightly.
    for base in ("fibonacci", "aes", "auth"):
        name = "%s-go" % base
        assert NATHEESAN_RISCV_SIZES_MB[name] < ours[name]
