"""Figs 4.6-4.9: hotel L1 cache misses on RISC-V, counts and I/D split."""

import statistics

from conftest import HOTEL_ORDER, run_once, write_output

from repro.core.results import MeasurementTable


def _l1_table(title, measurements, mode):
    table = MeasurementTable(title, ["l1i_misses", "l1d_misses", "data_share"])
    for name in HOTEL_ORDER:
        stats = getattr(measurements[name], mode)
        table.add_row(name, stats.l1i_misses, stats.l1d_misses,
                      stats.l1_data_miss_share)
    return table


def test_fig4_6_hotel_l1_misses_cold(benchmark, riscv_hotel):
    """Fig 4.6: L1 misses after cold execution."""
    table = run_once(benchmark, lambda: _l1_table(
        "Fig 4.6: hotel L1 misses, cold (RISC-V)", riscv_hotel, "cold"))
    write_output("fig4_06.txt", table.render() + "\n\n" + table.render_chart())

    cold_total = {name: riscv_hotel[name].cold.l1_misses for name in HOTEL_ORDER}
    # "the functions that depend on Memcached undergo slowdown due to
    # cache misses" — the trio misses more cold.
    trio = ["hotel-reservation-go", "hotel-rate-go", "hotel-profile-go"]
    plain = ["hotel-geo-go", "hotel-recommendation-go", "hotel-user-go"]
    assert statistics.mean(cold_total[name] for name in trio) > \
        statistics.mean(cold_total[name] for name in plain)
    # Profile's cold misses dominate the suite (7.7M in the paper).
    assert max(cold_total, key=cold_total.get) == "hotel-profile-go"


def test_fig4_7_hotel_l1_misses_warm(benchmark, riscv_hotel):
    """Fig 4.7: L1 misses after warm execution."""
    table = run_once(benchmark, lambda: _l1_table(
        "Fig 4.7: hotel L1 misses, warm (RISC-V)", riscv_hotel, "warm"))
    write_output("fig4_07.txt", table.render() + "\n\n" + table.render_chart())

    warm_total = {name: riscv_hotel[name].warm.l1_misses for name in HOTEL_ORDER}
    cold_total = {name: riscv_hotel[name].cold.l1_misses for name in HOTEL_ORDER}
    # Warm misses collapse relative to cold for every function.
    assert all(cold_total[name] > 5 * max(1, warm_total[name])
               for name in HOTEL_ORDER)
    # "profile, the least fast function in Cold, having the least misses
    # and therefore number of cycles" warm: its instruction-miss count is
    # the suite minimum and its total is within a whisker of it.
    assert min(
        riscv_hotel[name].warm.l1i_misses for name in HOTEL_ORDER
    ) == riscv_hotel["hotel-profile-go"].warm.l1i_misses
    assert warm_total["hotel-profile-go"] <= 1.10 * min(warm_total.values())
    warm_cycles = {name: riscv_hotel[name].warm.cycles for name in HOTEL_ORDER}
    assert min(warm_cycles, key=warm_cycles.get) == "hotel-profile-go"


def test_fig4_8_l1_split_cold(benchmark, riscv_hotel):
    """Fig 4.8: percentage I vs D misses, cold (paper: ~60% data)."""
    table = run_once(benchmark, lambda: _l1_table(
        "Fig 4.8: hotel L1 miss split, cold (RISC-V)", riscv_hotel, "cold"))
    write_output("fig4_08.txt", table.render() + "\n\n" + table.render_chart())

    shares = [riscv_hotel[name].cold.l1_data_miss_share for name in HOTEL_ORDER]
    mean_share = statistics.mean(shares)
    # "in cold executions the data cache misses are 60% of misses on average"
    assert 0.40 <= mean_share <= 0.80, mean_share
    # Both miss kinds are material cold.
    assert all(0.15 <= share <= 0.95 for share in shares)


def test_fig4_9_l1_split_warm(benchmark, riscv_hotel):
    """Fig 4.9: percentage I vs D misses, warm.

    The paper's point: the data share *drops* warm (~30% vs ~60%) because
    the first execution requested plenty of data for the first time and
    "some of that data are already present in the cache hierarchy" on the
    10th run.  We assert the drop for the functions whose warm path skips
    the data fetch (the Memcached trio reads far less data warm).
    """
    table = run_once(benchmark, lambda: _l1_table(
        "Fig 4.9: hotel L1 miss split, warm (RISC-V)", riscv_hotel, "warm"))
    write_output("fig4_09.txt", table.render() + "\n\n" + table.render_chart())

    # Warm data misses shrink much more than warm instruction misses do.
    for name in HOTEL_ORDER:
        cold = riscv_hotel[name].cold
        warm = riscv_hotel[name].warm
        data_reduction = cold.l1d_misses / max(1, warm.l1d_misses)
        assert data_reduction > 3, (name, data_reduction)
