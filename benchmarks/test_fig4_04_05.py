"""Figs 4.4 / 4.5: cycles on the RISC-V simulated system, cold vs warm."""

from conftest import HOTEL_ORDER, STANDALONE_SHOP_ORDER, run_once, write_output

from repro.core.results import cold_warm_table


def test_fig4_4_riscv_standalone_shop_cycles(benchmark, riscv_standalone_shop):
    """Fig 4.4: standalone + online shop cycles (RISC-V)."""

    def build():
        return cold_warm_table(
            "Fig 4.4: cycles, standalone + online shop (RISC-V)",
            riscv_standalone_shop,
            metric=lambda stats: stats.cycles,
            order=STANDALONE_SHOP_ORDER,
            metric_name="cycles",
        )

    table = run_once(benchmark, build)
    write_output("fig4_04.txt", table.render() + "\n\n" + table.render_chart())

    m = riscv_standalone_shop
    cycles = {name: (m[name].cold.cycles, m[name].warm.cycles) for name in m}

    # Cold always exceeds warm.
    assert all(cold > warm for cold, warm in cycles.values())
    # "the Go benchmarks tend to have the fewest cold cycles"
    go_cold = [cold for name, (cold, _w) in cycles.items() if name.endswith("-go")]
    other_cold = [cold for name, (cold, _w) in cycles.items() if not name.endswith("-go")]
    assert max(go_cold) < min(
        cold for name, (cold, _w) in cycles.items() if "python" in name
    )
    # "the NodeJs benchmarks feature a 50% speedup in warm executions"
    for name in cycles:
        if "nodejs" in name:
            cold, warm = cycles[name]
            assert 1.4 <= cold / warm <= 3.5
    # "the Python version, despite having the longest cold execution,
    # takes the shortest amount of time in the warm execution" (Fibonacci set)
    fib = {name: cycles[name] for name in cycles if name.startswith("fibonacci")}
    assert max(fib.items(), key=lambda kv: kv[1][0])[0] == "fibonacci-python"
    assert min(fib.items(), key=lambda kv: kv[1][1])[0] == "fibonacci-python"


def test_fig4_5_riscv_hotel_cycles(benchmark, riscv_hotel, riscv_standalone_shop):
    """Fig 4.5: hotel application cycles (RISC-V)."""

    def build():
        return cold_warm_table(
            "Fig 4.5: cycles, hotel application (RISC-V)",
            riscv_hotel,
            metric=lambda stats: stats.cycles,
            order=HOTEL_ORDER,
            metric_name="cycles",
        )

    table = run_once(benchmark, build)
    write_output("fig4_05.txt", table.render() + "\n\n" + table.render_chart())

    hotel_cold = {name: m.cold.cycles for name, m in riscv_hotel.items()}
    hotel_warm = {name: m.warm.cycles for name, m in riscv_hotel.items()}
    standalone_cold = [
        m.cold.cycles for name, m in riscv_standalone_shop.items()
        if name.split("-")[0] in ("fibonacci", "aes", "auth")
    ]

    # "cold executions last significantly longer with respect to the
    # standalone functions ... sizes ten times greater"
    import statistics
    assert statistics.mean(hotel_cold.values()) > 4 * statistics.mean(standalone_cold)
    # The profile cold execution is the outlier (351M cycles in the paper).
    assert max(hotel_cold, key=hotel_cold.get) == "hotel-profile-go"
    assert hotel_cold["hotel-profile-go"] > 1.4 * sorted(hotel_cold.values())[-2]
    # "smaller amount of cycles for the first three functions but not for
    # the last three" — the Memcached-dependent trio costs more cold.
    trio = ("hotel-reservation-go", "hotel-rate-go", "hotel-profile-go")
    plain = ("hotel-geo-go", "hotel-recommendation-go", "hotel-user-go")
    assert min(hotel_cold[name] for name in trio) > max(
        hotel_cold[name] for name in plain
    ) * 0.95
    # Warm executions collapse for everyone.
    assert all(hotel_cold[name] > 5 * hotel_warm[name] for name in hotel_cold)
