"""Tables 4.1-4.3: simulated platform configurations."""

from conftest import run_once, write_output

from repro.core.config import (
    RISCV_PLATFORM,
    X86_PLATFORM,
    common_config_rows,
)


def test_table_4_1_common_parameters(benchmark):
    """Table 4.1: the shared microarchitectural configuration."""

    def build():
        return "Table 4.1: common configuration\n" + "\n".join(common_config_rows())

    text = run_once(benchmark, build)
    write_output("table4_1.txt", text)
    rows = dict(
        line.split(": ", 1) for line in text.splitlines()[1:]
    )
    assert rows["L1 I Cache"] == "2 Cores x 32KB, 8-way set associative"
    assert rows["L1 D Cache"] == "2 Cores x 32KB, 8-way set associative"
    assert rows["L2 Cache"] == "2 Cores x 512KB, 4-way set associative"
    assert rows["ROB"] == "192 entries"
    assert rows["LSQs"] == "32 Load entries + 32 Store entries"
    assert rows["Registers"] == "256 Int + 256 Float"
    assert rows["Number Of Cores"] == "2"
    assert rows["Clock Frequency"] == "1GHz"
    assert rows["Linux Kernel"] == "5.15.59"
    assert rows["Docker Version"] == "25.0.0"


def test_table_4_2_riscv_specifics(benchmark):
    """Table 4.2: RISC-V platform specifics."""

    def build():
        rows = RISCV_PLATFORM.specific_parameters()
        return "Table 4.2: RISC-V specifics\n" + "\n".join(
            "%s: %s" % item for item in rows.items()
        )

    text = run_once(benchmark, build)
    write_output("table4_2.txt", text)
    specifics = RISCV_PLATFORM.specific_parameters()
    assert "Jammy" in specifics["Os"]
    assert "riscv64" in specifics["kernel compiled with gcc"]


def test_table_4_3_x86_specifics(benchmark):
    """Table 4.3: x86 platform specifics."""

    def build():
        rows = X86_PLATFORM.specific_parameters()
        return "Table 4.3: x86 specifics\n" + "\n".join(
            "%s: %s" % item for item in rows.items()
        )

    text = run_once(benchmark, build)
    write_output("table4_3.txt", text)
    specifics = X86_PLATFORM.specific_parameters()
    assert "Jammy" in specifics["Os"]
    assert specifics["kernel compiled with gcc"].startswith("gcc")
