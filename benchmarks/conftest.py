"""Shared fixtures for the figure/table reproduction benches.

Each fixture computes one measurement batch (a full 10-request protocol
per function per platform) once per session; the per-figure benches then
slice, print and assert the paper's shapes.  Output tables are also
written to ``benchmarks/output/`` so a bench run leaves the regenerated
figure data on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import reproduce
from repro.core.harness import clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.core.spec import MeasurementSpec
from repro.workloads.catalog import (
    HOTEL_FUNCTIONS,
    ONLINESHOP_FUNCTIONS,
    STANDALONE_FUNCTIONS,
)

#: The scaled-machine configuration for the bench runs (see DESIGN.md and
#: repro.core.scale).  Override with REPRO_TIME_SCALE / REPRO_SPACE_SCALE.
#: Batches schedule through the parallel measurement engine: REPRO_JOBS
#: picks the worker count and REPRO_CACHE_DIR / REPRO_RESULT_CACHE
#: control the persistent result cache, so a re-run with a warm cache
#: skips simulation entirely.
BENCH_SCALE = SimScale(
    time=int(os.environ.get("REPRO_TIME_SCALE", "256")),
    space=int(os.environ.get("REPRO_SPACE_SCALE", "16")),
)

OUTPUT_DIR = Path(__file__).parent / "output"

#: Figure ordering: standalone functions then the online shop (Fig 4.4).
STANDALONE_SHOP_ORDER = [fn.name for fn in STANDALONE_FUNCTIONS] + [
    fn.name for fn in ONLINESHOP_FUNCTIONS
]
HOTEL_ORDER = [fn.name for fn in HOTEL_FUNCTIONS]


def write_output(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def result_cache():
    """One cache handle for the whole bench session, reported at the end."""
    from repro.core.rescache import cache_enabled, ResultCache

    if not cache_enabled():
        yield None
        return
    cache = ResultCache()
    yield cache
    stats = cache.stats()
    print("\n[rescache] %d hit(s), %d miss(es); %d entrie(s) at %s"
          % (stats["hits"], stats["misses"], stats["entries"], stats["root"]))


@pytest.fixture(scope="session")
def riscv_standalone_shop(result_cache):
    return reproduce.measure(
        MeasurementSpec(function="standalone+shop", isa="riscv",
                        scale=BENCH_SCALE),
        cache=result_cache or False)


@pytest.fixture(scope="session")
def x86_standalone_shop(result_cache):
    return reproduce.measure(
        MeasurementSpec(function="standalone+shop", isa="x86",
                        scale=BENCH_SCALE),
        cache=result_cache or False)


@pytest.fixture(scope="session")
def riscv_hotel(result_cache):
    return reproduce.measure(
        MeasurementSpec(function="hotel", isa="riscv", scale=BENCH_SCALE,
                        db="cassandra"),
        cache=result_cache or False)


@pytest.fixture(scope="session")
def x86_hotel(result_cache):
    return reproduce.measure(
        MeasurementSpec(function="hotel", isa="x86", scale=BENCH_SCALE,
                        db="cassandra"),
        cache=result_cache or False)


@pytest.fixture(scope="session")
def qemu_db_comparison():
    """Fig 4.20's data: hotel request times under QEMU/x86, per database."""
    return reproduce.qemu_database_comparison()


@pytest.fixture(scope="session", autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield


def run_once(benchmark, func):
    """Run an expensive reproduction exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
