"""Tables 3.1-3.4: the benchmark-suite survey and the vSwarm catalog."""

from conftest import run_once, write_output

from repro.workloads.catalog import (
    BENCHMARK_SUITE_SURVEY,
    HOTEL_FUNCTIONS,
    ONLINESHOP_FUNCTIONS,
    STANDALONE_FUNCTIONS,
)


def test_table_3_1_suite_survey(benchmark):
    """Table 3.1: available serverless benchmark suites."""

    def build():
        lines = ["Table 3.1: Serverless benchmark suites",
                 "%-16s %-36s %-16s %-10s %s" % ("Suite", "Languages", "Infra", "ISAs", "gem5")]
        for row in BENCHMARK_SUITE_SURVEY:
            lines.append("%-16s %-36s %-16s %-10s %s" % (
                row["suite"], ", ".join(row["languages"]), row["infrastructure"],
                "/".join(row["isas"]), "Yes" if row["gem5"] else "No",
            ))
        return "\n".join(lines)

    text = run_once(benchmark, build)
    write_output("table3_1.txt", text)
    # vSwarm is the only suite with gem5 support and multi-ISA coverage —
    # the selection rationale of §3.1.
    vswarm = [row for row in BENCHMARK_SUITE_SURVEY if row["suite"] == "vSwarm"][0]
    assert vswarm["gem5"]
    assert len(vswarm["isas"]) > 1
    assert sum(1 for row in BENCHMARK_SUITE_SURVEY if row["gem5"]) == 1


def test_table_3_2_standalone_matrix(benchmark):
    """Table 3.2: standalone functions x runtimes."""

    def build():
        by_base = {}
        for function in STANDALONE_FUNCTIONS:
            by_base.setdefault(function.base_name, set()).add(function.runtime_name)
        lines = ["Table 3.2: standalone functions",
                 "%-12s %-4s %-7s %s" % ("Function", "Go", "Python", "NodeJs")]
        for base, runtimes in sorted(by_base.items()):
            lines.append("%-12s %-4s %-7s %s" % (
                base.capitalize(),
                "Yes" if "go" in runtimes else "No",
                "Yes" if "python" in runtimes else "No",
                "Yes" if "nodejs" in runtimes else "No",
            ))
        return by_base, "\n".join(lines)

    by_base, text = run_once(benchmark, lambda: build())
    write_output("table3_2.txt", text)
    assert set(by_base) == {"fibonacci", "aes", "auth"}
    for runtimes in by_base.values():
        assert runtimes == {"go", "python", "nodejs"}


def test_table_3_3_onlineshop(benchmark):
    """Table 3.3: the Online Shop functions and runtimes."""

    def build():
        lines = ["Table 3.3: Online Shop functions",
                 "%-32s %s" % ("Function", "Runtime")]
        for function in ONLINESHOP_FUNCTIONS:
            lines.append("%-32s %s" % (function.name, function.runtime_name))
        return "\n".join(lines)

    text = run_once(benchmark, build)
    write_output("table3_3.txt", text)
    runtimes = [fn.runtime_name for fn in ONLINESHOP_FUNCTIONS]
    assert runtimes.count("go") == 2
    assert runtimes.count("python") == 2
    assert runtimes.count("nodejs") == 2


def test_table_3_4_hotel(benchmark):
    """Table 3.4: hotel functions, runtimes and service dependencies."""

    def build():
        lines = ["Table 3.4: Hotel functions",
                 "%-16s %-8s %-9s %s" % ("Function", "Runtime", "Database", "Memcached")]
        for function in HOTEL_FUNCTIONS:
            lines.append("%-16s %-8s %-9s %s" % (
                function.short_name, function.runtime_name, "Yes",
                "Yes" if function.uses_memcached else "No",
            ))
        return "\n".join(lines)

    text = run_once(benchmark, build)
    write_output("table3_4.txt", text)
    assert all(fn.runtime_name == "go" for fn in HOTEL_FUNCTIONS)
    cached = {fn.short_name for fn in HOTEL_FUNCTIONS if fn.uses_memcached}
    assert cached == {"reservation", "rate", "profile"}
