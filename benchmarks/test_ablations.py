"""Ablation benches: the design choices DESIGN.md calls out, plus the
thesis's §6 future-work directions (design-space exploration, more ISAs,
alternative databases, lukewarm execution).
"""

import pytest
from conftest import BENCH_SCALE, run_once, write_output

from repro.core.dse import DesignSpace
from repro.core.harness import ExperimentHarness
from repro.core.results import MeasurementTable
from repro.db import CassandraStore, MariaDbStore, RedisStore
from repro.workloads.catalog import get_function
from repro.workloads.hotel import HotelSuite


def test_ablation_instruction_prefetcher(benchmark):
    """Cold starts are front-end bound; a next-line I-prefetcher is the
    Schall-style remedy (lukewarm-serverless / Ignite motivation)."""

    def build():
        space = DesignSpace(isa="riscv", scale=BENCH_SCALE)
        space.axis("prefetch_i_degree", [0, 1, 2, 4, 8])
        return space.sweep(get_function("fibonacci-python"))

    result = run_once(benchmark, build)
    write_output("ablation_prefetcher.txt", result.render())
    points = {point.settings["prefetch_i_degree"]: point for point in result.points}
    # Monotone cold improvement with degree; degree 4 at least 1.5x over none.
    degrees = sorted(points)
    colds = [points[degree].cold_cycles for degree in degrees]
    assert colds == sorted(colds, reverse=True)
    assert points[0].cold_cycles > 1.5 * points[4].cold_cycles
    # The warm path barely cares (already cache-resident).
    assert points[0].warm_cycles < 1.6 * points[8].warm_cycles


def test_ablation_replacement_policy(benchmark):
    """LRU vs FIFO vs random under the python cold-start footprint."""

    def build():
        space = DesignSpace(isa="riscv", scale=BENCH_SCALE)
        space.axis("replacement", ["lru", "fifo", "random"])
        return space.sweep(get_function("fibonacci-python"))

    result = run_once(benchmark, build)
    write_output("ablation_replacement.txt", result.render())
    by_policy = {point.settings["replacement"]: point for point in result.points}
    # A cold start is compulsory-miss dominated: policies land close.
    colds = [point.cold_cycles for point in by_policy.values()]
    assert max(colds) < 1.5 * min(colds)
    # Warm locality is where LRU should not lose badly.
    assert by_policy["lru"].warm_cycles <= 1.3 * min(
        point.warm_cycles for point in by_policy.values()
    )


def test_ablation_hotel_database_choice(benchmark):
    """The §3.3.3 decision replayed: Cassandra vs the rejected MariaDB and
    Redis alternatives, on the same geo workload."""

    def build():
        table = MeasurementTable(
            "Hotel geo on RISC-V by backing database (cycles)",
            ["cold_cycles", "warm_cycles", "riscv_friendly"],
        )
        results = {}
        for store_cls in (CassandraStore, MariaDbStore, RedisStore):
            suite = HotelSuite(store_cls())
            function = suite.functions[0]  # geo
            harness = ExperimentHarness(isa="riscv", scale=BENCH_SCALE)
            measurement = harness.measure_function(
                function, services=suite.services_for(function))
            results[suite.db.name] = measurement
            table.add_row(suite.db.name, measurement.cold.cycles,
                          measurement.warm.cycles,
                          "yes" if suite.db.riscv_friendly else "no")
        return results, table

    results, table = run_once(benchmark, lambda: build())
    write_output("ablation_databases.txt", table.render())
    # Every backend completes the protocol with the cold/warm cliff intact.
    for name, measurement in results.items():
        assert measurement.cold.cycles > 2 * measurement.warm.cycles, name
    # Redis (an in-memory cache pressed into primary duty) has the
    # lightest engine work.
    assert results["redis"].warm.cycles <= results["cassandra"].warm.cycles


def test_ablation_lukewarm(benchmark):
    """Lukewarm execution: warm software state on a thrashed core."""

    def build():
        harness = ExperimentHarness(isa="riscv", scale=BENCH_SCALE)
        return harness.measure_lukewarm(
            function=get_function("aes-go"),
            intruder=get_function("fibonacci-python"),
        )

    measurement = run_once(benchmark, build)
    lines = [
        "Lukewarm ablation: aes-go thrashed by fibonacci-python (RISC-V)",
        "cold:     %8d cycles" % measurement.cold.cycles,
        "warm:     %8d cycles" % measurement.warm.cycles,
        "lukewarm: %8d cycles (%.1fx warm)" % (
            measurement.lukewarm.cycles, measurement.lukewarm_slowdown),
    ]
    write_output("ablation_lukewarm.txt", "\n".join(lines))
    assert measurement.warm.cycles < measurement.lukewarm.cycles \
        < measurement.cold.cycles
    assert measurement.lukewarm.instructions == measurement.warm.instructions


def test_ablation_three_isa_comparison(benchmark):
    """The future-work ISA axis: RISC-V vs Arm vs x86 on one function."""

    def build():
        table = MeasurementTable(
            "fibonacci-go across ISAs (cycles / instructions)",
            ["cold_cycles", "warm_cycles", "cold_insts"],
        )
        results = {}
        for isa in ("riscv", "arm", "x86"):
            harness = ExperimentHarness(isa=isa, scale=BENCH_SCALE)
            measurement = harness.measure_function(get_function("fibonacci-go"))
            results[isa] = measurement
            table.add_row(isa, measurement.cold.cycles, measurement.warm.cycles,
                          measurement.cold.instructions)
        return results, table

    results, table = run_once(benchmark, lambda: build())
    write_output("ablation_three_isa.txt", table.render())
    # Arm sits between the lean RISC-V port and the heavyweight x86 stack.
    assert results["riscv"].cold.instructions \
        < results["arm"].cold.instructions \
        < results["x86"].cold.instructions
    assert results["riscv"].cold.cycles < results["arm"].cold.cycles \
        < results["x86"].cold.cycles


def test_ablation_kvm_setup_instability(benchmark):
    """gem5's KVM core vs the Atomic workaround (§3.4.1): quantify how
    often the KVM checkpoint path freezes across seeds."""

    def build():
        from repro.core.harness import clear_boot_checkpoint_cache

        outcomes = {"kvm_ok": 0, "fell_back": 0}
        for seed in range(12):
            clear_boot_checkpoint_cache()
            harness = ExperimentHarness(isa="riscv", scale=BENCH_SCALE,
                                        setup_cpu="kvm", seed=seed)
            harness.prepare()
            if harness.setup_cpu == "atomic":
                outcomes["fell_back"] += 1
            else:
                outcomes["kvm_ok"] += 1
        clear_boot_checkpoint_cache()
        return outcomes

    outcomes = run_once(benchmark, build)
    write_output("ablation_kvm.txt",
                 "KVM setup outcomes over 12 seeds: %s" % outcomes)
    # "A lot of times, the gem5 simulator was freezing when a magic M5
    # instruction was executed" — a material fraction must fail.
    assert outcomes["fell_back"] >= 2
    assert outcomes["kvm_ok"] >= 1  # but not always


def test_ablation_scale_invariance(benchmark):
    """The scaled-machine methodology's core promise: the paper's shapes
    are stable across scale choices."""

    def build():
        from repro.core.scale import SimScale

        shapes = {}
        for time_scale in (256, 1024):
            scale = SimScale(time=time_scale, space=16)
            ratios = {}
            for name in ("fibonacci-go", "fibonacci-python"):
                harness = ExperimentHarness(isa="riscv", scale=scale)
                measurement = harness.measure_function(get_function(name))
                ratios[name] = measurement.cold_warm_cycle_ratio
            shapes[time_scale] = ratios
        return shapes

    shapes = run_once(benchmark, build)
    write_output("ablation_scale.txt", repr(shapes))
    for time_scale, ratios in shapes.items():
        # Python's cold/warm cliff dwarfs Go's at every scale.
        assert ratios["fibonacci-python"] > 1.5 * ratios["fibonacci-go"], time_scale


def test_ablation_prefetcher_kinds(benchmark):
    """The third §6 axis: none vs next-line vs PC-stride data prefetch, on
    the strided database-scan workload where they differ."""

    def build():
        space = DesignSpace(isa="riscv", scale=BENCH_SCALE)
        space.axis("prefetch_d_kind", ["none", "nextline", "stride"])
        space.axis("prefetch_d_degree", [4])

        def services():
            suite = HotelSuite(CassandraStore())
            return suite.services_for(suite.functions[0])

        suite = HotelSuite(CassandraStore())
        geo = suite.functions[0]
        return space.sweep(geo, services_factory=lambda: HotelSuite(
            CassandraStore()).services_for(geo))

    result = run_once(benchmark, build)
    write_output("ablation_prefetcher_kinds.txt", result.render())
    by_kind = {point.settings["prefetch_d_kind"]: point
               for point in result.points}
    # Any prefetching beats none on the scan-heavy cold path.
    assert by_kind["nextline"].cold_cycles <= by_kind["none"].cold_cycles
    assert by_kind["stride"].cold_cycles <= by_kind["none"].cold_cycles


def test_ablation_branch_predictors(benchmark):
    """Branch-predictor axis on the branchy Python cold path."""

    def build():
        space = DesignSpace(isa="riscv", scale=BENCH_SCALE)
        space.axis("branch_predictor",
                   ["tournament", "gshare", "bimodal", "static-taken"])
        return space.sweep(get_function("fibonacci-python"))

    result = run_once(benchmark, build)
    write_output("ablation_bpred.txt", result.render())
    by_kind = {point.settings["branch_predictor"]: point
               for point in result.points}
    # Cold code is one-shot: predictors cannot train and BTB misses cost
    # squashes, so always-taken is competitive there (the front-end-state
    # insight behind the Ignite line of work).  Keep the cold gap bounded.
    for kind in ("tournament", "gshare", "bimodal"):
        assert by_kind[kind].cold_cycles <= \
            by_kind["static-taken"].cold_cycles * 1.25, kind
    # Warm requests re-execute trained branches: real predictors win.
    for kind in ("tournament", "gshare", "bimodal"):
        assert by_kind[kind].warm_cycles <= \
            by_kind["static-taken"].warm_cycles * 1.02, kind
    warm_mispredicts = {
        kind: point.measurement.warm.branch_mispredicts
        for kind, point in by_kind.items()
    }
    assert warm_mispredicts["tournament"] <= warm_mispredicts["static-taken"]
