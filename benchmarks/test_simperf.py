"""Simulator-performance micro-benches: the hot paths the predecode +
sampling work targets, timed in isolation so a regression in any one
layer shows up here before it shows up in ``bench-smoke``.

Bounds are deliberately loose relative ratios (hit path vs DRAM path,
predecode vs legacy replay, sampled vs full detail) so they hold on
slow shared CI hosts; the absolute timings are printed for the record.
"""

import time

from conftest import run_once

from repro.sim.isa import ir, predecode
from repro.sim.mem.dram import DramModel
from repro.sim.mem.hierarchy import CoreMemSystem, MemoryHierarchyConfig
from repro.sim.statistics import StatGroup
from repro.sim.system import SimulatedSystem


def _long_program(name="perf", seed=0, trips=600):
    program = ir.Program(name, seed=seed)
    buf = program.space.alloc("buf", 1 << 16)
    body = ir.Seq([
        ir.compute_block(ialu=200),
        ir.Loop(ir.touch_block(buf, loads=6, stores=2), trips=trips),
    ])
    program.add_routine(ir.Routine("main", body), entry=True)
    return program


def test_microbench_cache_hit_path(benchmark):
    """The per-instruction L1/TLB hit path: locals-hoisted lookups keep a
    hot hit far cheaper than a DRAM-bound miss."""
    stats = StatGroup("bench")
    mem = CoreMemSystem(0, MemoryHierarchyConfig(),
                        DramModel(stats_parent=stats), stats)
    line = mem.config.line_size
    hot = [index * line for index in range(16)]
    # Streaming footprint far beyond L2: every access misses to DRAM.
    cold_span = 1 << 26
    for addr in hot:
        mem.data_access(addr, False, 0, 0x1000)

    def timed():
        rounds = 20000
        start = time.perf_counter()
        cycle = 0
        for _ in range(rounds // len(hot)):
            for addr in hot:
                cycle += 1
                mem.data_access(addr, False, cycle, 0x1000)
        hit_wall = time.perf_counter() - start

        start = time.perf_counter()
        addr = 0
        for index in range(rounds):
            cycle += 1
            mem.data_access((addr + index * line * 9) % cold_span,
                            False, cycle, 0x1000)
        miss_wall = time.perf_counter() - start
        return hit_wall, miss_wall, rounds

    hit_wall, miss_wall, rounds = run_once(benchmark, timed)
    print("\n[simperf] L1 hit %8.1f ns/access, DRAM-path %8.1f ns/access"
          % (hit_wall / rounds * 1e9, miss_wall / rounds * 1e9))
    assert hit_wall < miss_wall  # the hit path must stay the cheap one


def test_microbench_predecode_replay(benchmark):
    """Predecoded atomic replay vs the legacy trace path on one program
    (decode cost amortises over repeated replays, as in the protocol)."""
    program = _long_program()

    def timed():
        replays = 6
        system = SimulatedSystem("pd", "riscv")
        system.run(1, program, model="atomic")  # decode + cold caches
        start = time.perf_counter()
        for _ in range(replays):
            system.run(1, program, model="atomic")
        cached_wall = time.perf_counter() - start

        previous = predecode.set_enabled(False)
        try:
            legacy_system = SimulatedSystem("lg", "riscv")
            legacy_system.run(1, program, model="atomic")
            start = time.perf_counter()
            for _ in range(replays):
                legacy_system.run(1, program, model="atomic")
            legacy_wall = time.perf_counter() - start
        finally:
            predecode.set_enabled(previous)
        return cached_wall, legacy_wall

    cached_wall, legacy_wall = run_once(benchmark, timed)
    print("\n[simperf] atomic replay: predecode %.1f ms, legacy %.1f ms "
          "(%.1fx)" % (cached_wall * 1e3, legacy_wall * 1e3,
                       legacy_wall / cached_wall))
    assert cached_wall < legacy_wall


def test_microbench_blockjit_compile_vs_replay(benchmark):
    """Tier 3: one-time block-compile overhead vs warm compiled replay.
    Compile cost must stay a small one-off next to the replay it speeds
    up, and compiled replay must not lose to the tier-2 interpreter."""
    from repro.sim.isa import blockjit

    program = _long_program(name="perf-jit", trips=600)

    def timed():
        replays = 6
        blockjit.reset_stats()
        previous = blockjit.set_enabled(True)
        try:
            system = SimulatedSystem("bj", "riscv")
            # Cross the promotion threshold: blocks compile during these
            # runs, so STATS captures the full codegen overhead.
            for _ in range(blockjit.threshold() + 1):
                system.run(1, program, model="atomic")
            compile_wall = blockjit.STATS["compile_s"]
            units = blockjit.STATS["compiled_units"]
            start = time.perf_counter()
            for _ in range(replays):
                system.run(1, program, model="atomic")
            jit_wall = time.perf_counter() - start

            blockjit.set_enabled(False)
            tier2_system = SimulatedSystem("t2", "riscv")
            tier2_system.run(1, program, model="atomic")
            start = time.perf_counter()
            for _ in range(replays):
                tier2_system.run(1, program, model="atomic")
            tier2_wall = time.perf_counter() - start
        finally:
            blockjit.set_enabled(previous)
        return units, compile_wall, jit_wall, tier2_wall

    units, compile_wall, jit_wall, tier2_wall = run_once(benchmark, timed)
    print("\n[simperf] blockjit: %d units compiled in %.1f ms; warm "
          "compiled replay %.1f ms vs tier-2 %.1f ms (%.2fx)"
          % (units, compile_wall * 1e3, jit_wall * 1e3, tier2_wall * 1e3,
             tier2_wall / jit_wall))
    assert units > 0
    # Compiled replay must beat the interpreter it replaced (slack for
    # noisy shared CI hosts), and compiling must cost less than the
    # replay time it wins back over the protocol's replay count.
    assert jit_wall < tier2_wall * 1.10
    assert compile_wall < tier2_wall


def test_microbench_sampled_o3(benchmark):
    """Sampled O3 vs full detail on a long program: the sampled loop must
    be faster, and its instruction stream must stay functionally exact."""
    from repro.sim.sampling import SamplingConfig

    program = _long_program(trips=2000)
    config = SamplingConfig(interval=4096, detail=512, warmup=256,
                            jitter=True, min_insts=0)

    def timed():
        full_system = SimulatedSystem("full", "riscv")
        sampled_system = SimulatedSystem("smp", "riscv")
        full_system.run(1, program, model="o3")  # decode once
        sampled_system.run(1, program, model="o3", sampling=config)
        start = time.perf_counter()
        full = full_system.run(1, program, model="o3")
        full_wall = time.perf_counter() - start
        start = time.perf_counter()
        sampled = sampled_system.run(1, program, model="o3",
                                     sampling=config)
        sampled_wall = time.perf_counter() - start
        return full, sampled, full_wall, sampled_wall

    full, sampled, full_wall, sampled_wall = run_once(benchmark, timed)
    print("\n[simperf] o3: full %.1f ms, sampled %.1f ms (%.1fx)"
          % (full_wall * 1e3, sampled_wall * 1e3, full_wall / sampled_wall))
    assert sampled.instructions == full.instructions
    assert sampled_wall < full_wall
