"""Energy comparison (the ISA-wars axis) and native-scale projection."""

from conftest import BENCH_SCALE, STANDALONE_SHOP_ORDER, run_once, write_output

from repro.core.results import MeasurementTable, geometric_mean
from repro.sim.energy import EnergyModel


def test_extension_energy_per_request(benchmark, riscv_standalone_shop,
                                      x86_standalone_shop):
    """Energy per cold request, RISC-V vs x86 — the power/energy trade-off
    the thesis motivates via Blem et al. (§1.1) but leaves unmeasured."""

    def build():
        model = EnergyModel()
        table = MeasurementTable("Energy per cold request (nJ, scaled)",
                                 ["riscv_nj", "x86_nj", "ratio"])
        ratios = []
        for name in STANDALONE_SHOP_ORDER:
            riscv = model.estimate(riscv_standalone_shop[name].cold)
            x86 = model.estimate(x86_standalone_shop[name].cold)
            ratio = x86.total_nj / riscv.total_nj
            ratios.append(ratio)
            table.add_row(name, round(riscv.total_nj, 1),
                          round(x86.total_nj, 1), round(ratio, 2))
        return ratios, table

    ratios, table = run_once(benchmark, lambda: build())
    write_output("ext_energy.txt", table.render())
    # Fewer instructions and fewer misses mean less energy: the RISC-V
    # platform wins the energy comparison across the board here.
    assert all(ratio > 1.0 for ratio in ratios)
    assert geometric_mean(ratios) > 1.5


def test_extension_native_projection(benchmark, riscv_standalone_shop,
                                     riscv_hotel):
    """Project scaled cycles back toward the paper's native magnitudes.

    The scaled-machine contract is shape, not absolutes — but the
    projection (scaled cycles x time_scale) should land within an order
    of magnitude or two of the thesis's reported figures, which this
    bench reports side by side.
    """

    #: Approximate native cycle readings from the thesis's figures.
    paper_cold_cycles = {
        "fibonacci-go": 2.0e6,          # Fig 4.4 (~2M band)
        "fibonacci-python": 4.5e6,
        "fibonacci-nodejs": 3.0e6,
        "hotel-geo-go": 3.0e7,          # Fig 4.5
        "hotel-rate-go": 1.2e8,
        "hotel-profile-go": 3.51e8,     # the quoted 351M outlier
    }

    def build():
        table = MeasurementTable(
            "Projected vs paper cold cycles (time scale %d)" % BENCH_SCALE.time,
            ["projected", "paper", "off_by"],
        )
        offsets = {}
        for name, paper_value in paper_cold_cycles.items():
            batch = riscv_hotel if name.startswith("hotel-") \
                else riscv_standalone_shop
            projected = BENCH_SCALE.project_cycles(batch[name].cold.cycles)
            off_by = projected / paper_value
            offsets[name] = off_by
            table.add_row(name, "%.2gM" % (projected / 1e6),
                          "%.2gM" % (paper_value / 1e6), round(off_by, 2))
        return offsets, table

    offsets, table = run_once(benchmark, lambda: build())
    write_output("ext_projection.txt", table.render())
    for name, off_by in offsets.items():
        # Within ~30x of the authors' testbed absolute numbers.
        assert 1 / 30 < off_by < 30, (name, off_by)
    # The paper's biggest intra-figure gap survives projection: profile's
    # cold run dwarfs fibonacci-go's by over an order of magnitude in both
    # datasets (351M vs ~2M there; the same ordering here).
    projected_gap = offsets["hotel-profile-go"] * paper_cold_cycles["hotel-profile-go"] \
        / (offsets["fibonacci-go"] * paper_cold_cycles["fibonacci-go"])
    assert projected_gap > 10
