"""Extension benches: the workloads and capabilities beyond the thesis's
ported set (its §6 plan), measured with the same protocol.
"""

from conftest import BENCH_SCALE, run_once, write_output

from repro.core.duplex import DuplexHarness
from repro.core.harness import ExperimentHarness
from repro.core.results import MeasurementTable
from repro.workloads.catalog import EXTRA_FUNCTIONS, get_function
from repro.workloads.extras import deploy_video_pipeline
from repro.workloads.mapreduce import deploy_wordcount

STANDALONE_EXTRAS = ["compression-go", "image-rotate-python",
                     "recognition-python"]


def test_extension_standalone_extras(benchmark):
    """Compression / rotate / recognition through the 10-request protocol."""

    def build():
        table = MeasurementTable("Extension workloads (RISC-V, cycles)",
                                 ["cold_cycles", "warm_cycles"])
        measurements = {}
        for name in STANDALONE_EXTRAS:
            harness = ExperimentHarness(isa="riscv", scale=BENCH_SCALE)
            measurement = harness.measure_function(get_function(name))
            measurements[name] = measurement
            table.add_row(name, measurement.cold.cycles, measurement.warm.cycles)
        return measurements, table

    measurements, table = run_once(benchmark, lambda: build())
    write_output("ext_standalone.txt",
                 table.render() + "\n\n" + table.render_chart())
    for name, measurement in measurements.items():
        assert measurement.cold.cycles > 2 * measurement.warm.cycles, name
    # The interpreted functions keep the python pattern: bigger cold
    # cliff than the compiled one.
    assert measurements["image-rotate-python"].cold_warm_cycle_ratio > \
        measurements["compression-go"].cold_warm_cycle_ratio


def test_extension_chained_pipeline(benchmark):
    """The video-analytics chain: cold fan-out amplification."""

    def build():
        harness = ExperimentHarness(isa="riscv", scale=BENCH_SCALE)
        pipeline = harness.measure_pipeline(deploy_video_pipeline)
        from repro.core.harness import clear_boot_checkpoint_cache

        clear_boot_checkpoint_cache()
        harness2 = ExperimentHarness(isa="riscv", scale=BENCH_SCALE)
        single = harness2.measure_function(get_function("image-rotate-python"))
        return pipeline, single

    pipeline, single = run_once(benchmark, build)
    lines = [
        "Chained video-analytics pipeline (RISC-V, cycles)",
        "pipeline cold: %8d   warm: %8d" % (pipeline.cold.cycles,
                                            pipeline.warm.cycles),
        "one stage cold: %7d   warm: %8d" % (single.cold.cycles,
                                             single.warm.cycles),
    ]
    write_output("ext_pipeline.txt", "\n".join(lines))
    # A cold chain pays three inits: far beyond one stage's cold start.
    assert pipeline.cold.cycles > 1.8 * single.cold.cycles
    assert pipeline.cold.cycles > 5 * pipeline.warm.cycles
    cold_children = [child for child in pipeline.records[0].children
                     if child.cold]
    assert len(cold_children) == 2


def test_extension_mapreduce_fanout(benchmark):
    """Map-reduce word count: shard fan-out scales the cold request."""

    def build():
        from repro.core.harness import clear_boot_checkpoint_cache

        results = {}
        for shards in (1, 4):
            clear_boot_checkpoint_cache()
            harness = ExperimentHarness(isa="riscv", scale=BENCH_SCALE)
            results[shards] = harness.measure_pipeline(
                lambda platform, arch, s=shards: deploy_wordcount(
                    platform, arch, shards=s))
        return results

    results = run_once(benchmark, build)
    lines = ["Map-reduce word count (RISC-V, cycles)"]
    for shards, measurement in results.items():
        lines.append("shards=%d  cold=%8d  warm=%8d" % (
            shards, measurement.cold.cycles, measurement.warm.cycles))
    write_output("ext_mapreduce.txt", "\n".join(lines))
    # More shards -> more mapper hops and work in the driver's request.
    assert results[4].warm.cycles > results[1].warm.cycles
    # The distributed answer stayed correct.
    record = results[4].records[-1]
    assert record.result["total_words"] > 0


def test_extension_duplex_end_to_end(benchmark):
    """Two-core simulation: response-time decomposition."""

    def build():
        harness = DuplexHarness(isa="riscv", scale=BENCH_SCALE)
        return harness.measure_duplex(get_function("fibonacci-go"))

    measurement = run_once(benchmark, build)
    cold = measurement.cold_sample
    warm = measurement.warm_sample
    lines = [
        "End-to-end response time (RISC-V, cycles)",
        "cold: %7d = client %5d + network %4d + server %7d" % (
            cold.response_time, cold.client_cycles, cold.network_cycles,
            cold.server_cycles),
        "warm: %7d = client %5d + network %4d + server %7d" % (
            warm.response_time, warm.client_cycles, warm.network_cycles,
            warm.server_cycles),
    ]
    write_output("ext_duplex.txt", "\n".join(lines))
    # The server core dominates the response time — the justification for
    # the thesis collecting stats there (Fig 4.3).
    assert cold.server_share > 0.7
    assert warm.response_time < cold.response_time


def test_extension_cluster_replication_cost(benchmark):
    """Replicated Cassandra: paying for fault tolerance on the geo path."""

    def build():
        from repro.core.harness import clear_boot_checkpoint_cache
        from repro.db import CassandraCluster, CassandraStore
        from repro.workloads.hotel import HotelSuite

        results = {}
        for label, store in (("single", CassandraStore()),
                             ("cluster-rf2", CassandraCluster(nodes=3,
                                                              replication=2))):
            clear_boot_checkpoint_cache()
            suite = HotelSuite(store)
            function = suite.functions[0]  # geo
            harness = ExperimentHarness(isa="riscv", scale=BENCH_SCALE)
            results[label] = harness.measure_function(
                function, services=suite.services_for(function))
        return results

    results = run_once(benchmark, build)
    lines = ["Hotel geo: single node vs replicated cluster (RISC-V, cycles)"]
    for label, measurement in results.items():
        lines.append("%-12s cold=%8d warm=%8d" % (
            label, measurement.cold.cycles, measurement.warm.cycles))
    write_output("ext_cluster.txt", "\n".join(lines))
    # Replication is not free: the replicated scan costs more warm work.
    assert results["cluster-rf2"].warm.cycles > results["single"].warm.cycles


def test_extension_extras_have_container_images(benchmark):
    """The extension workloads package like the ported set."""

    def build():
        table = MeasurementTable("Extension container sizes (MB)",
                                 ["x86_mb", "riscv_mb"])
        for function in EXTRA_FUNCTIONS:
            table.add_row(function.name,
                          round(function.image("x86").compressed_size_mb, 2),
                          round(function.image("riscv").compressed_size_mb, 2))
        return table

    table = run_once(benchmark, build)
    write_output("ext_sizes.txt", table.render())
    assert len(table.rows) == len(EXTRA_FUNCTIONS)
