"""Figs 4.15-4.18: RISC-V vs x86 on the standalone + online shop set."""

from conftest import STANDALONE_SHOP_ORDER, run_once, write_output

from repro.core.results import isa_comparison_table

CRYPTO_NATIVE_TRIO = ("aes-go", "auth-go", "auth-python")


def test_fig4_15_cycles(benchmark, riscv_standalone_shop, x86_standalone_shop):
    """Fig 4.15: cycles, RISC-V vs x86."""

    def build():
        return isa_comparison_table(
            "Fig 4.15: cycles, RISC-V vs x86 (standalone + online shop)",
            riscv_standalone_shop, x86_standalone_shop,
            metric=lambda stats: stats.cycles,
            order=STANDALONE_SHOP_ORDER, metric_name="cycles",
        )

    table = run_once(benchmark, build)
    write_output("fig4_15.txt", table.render() + "\n\n" + table.render_chart())

    # "the RISC-V containers seem to be doing better than their x86
    # counterparts" — cold and warm.
    for name in STANDALONE_SHOP_ORDER:
        assert riscv_standalone_shop[name].cold.cycles < \
            x86_standalone_shop[name].cold.cycles, name
        assert riscv_standalone_shop[name].warm.cycles < \
            x86_standalone_shop[name].warm.cycles, name
    # "most of the times, the cold execution time in the RISC-V simulated
    # system is even shorter than the warm execution time in the x86 one"
    wins = [
        name for name in STANDALONE_SHOP_ORDER
        if riscv_standalone_shop[name].cold.cycles
        < x86_standalone_shop[name].warm.cycles
    ]
    assert wins, "no workload with RISC-V cold below x86 warm"


def test_fig4_16_instructions(benchmark, riscv_standalone_shop, x86_standalone_shop):
    """Fig 4.16: executed instructions, RISC-V vs x86."""

    def build():
        return isa_comparison_table(
            "Fig 4.16: instructions, RISC-V vs x86 (standalone + online shop)",
            riscv_standalone_shop, x86_standalone_shop,
            metric=lambda stats: stats.instructions,
            order=STANDALONE_SHOP_ORDER, metric_name="insts",
        )

    table = run_once(benchmark, build)
    write_output("fig4_16.txt", table.render() + "\n\n" + table.render_chart())

    # "x86 containers execute more instructions than the RISC-V containers
    # in the cold execution" — the headline finding.
    for name in STANDALONE_SHOP_ORDER:
        assert x86_standalone_shop[name].cold.instructions > \
            1.2 * riscv_standalone_shop[name].cold.instructions, name
    # "...but that is not the case in the warm phase.  Here we can point
    # some cases where x86 is more effective (aes-go, auth-go, auth-python)."
    for name in CRYPTO_NATIVE_TRIO:
        assert x86_standalone_shop[name].warm.instructions <= \
            riscv_standalone_shop[name].warm.instructions, name
    # Interpreted warm paths stay better on RISC-V (fibonacci-python).
    assert riscv_standalone_shop["fibonacci-python"].warm.instructions < \
        x86_standalone_shop["fibonacci-python"].warm.instructions


def test_fig4_17_l1i_misses(benchmark, riscv_standalone_shop, x86_standalone_shop):
    """Fig 4.17: L1 instruction misses, RISC-V vs x86."""

    def build():
        return isa_comparison_table(
            "Fig 4.17: L1I misses, RISC-V vs x86 (standalone + online shop)",
            riscv_standalone_shop, x86_standalone_shop,
            metric=lambda stats: stats.l1i_misses,
            order=STANDALONE_SHOP_ORDER, metric_name="l1i",
        )

    table = run_once(benchmark, build)
    write_output("fig4_17.txt", table.render() + "\n\n" + table.render_chart())

    # "for the majority of the comparisons RISC-V comes victorious".
    cold_wins = sum(
        1 for name in STANDALONE_SHOP_ORDER
        if riscv_standalone_shop[name].cold.l1i_misses
        <= x86_standalone_shop[name].cold.l1i_misses
    )
    warm_wins = sum(
        1 for name in STANDALONE_SHOP_ORDER
        if riscv_standalone_shop[name].warm.l1i_misses
        <= x86_standalone_shop[name].warm.l1i_misses
    )
    total = len(STANDALONE_SHOP_ORDER)
    assert cold_wins >= 0.8 * total
    assert warm_wins >= 0.8 * total


def test_fig4_18_l2_misses(benchmark, riscv_standalone_shop, x86_standalone_shop):
    """Fig 4.18: L2 misses, RISC-V vs x86.

    "This figure is very similar to 4.15 ... the L2 cache is possibly
    responsible for the fact that we see better performance in RISCV."
    """

    def build():
        return isa_comparison_table(
            "Fig 4.18: L2 misses, RISC-V vs x86 (standalone + online shop)",
            riscv_standalone_shop, x86_standalone_shop,
            metric=lambda stats: stats.l2_misses,
            order=STANDALONE_SHOP_ORDER, metric_name="l2",
        )

    table = run_once(benchmark, build)
    write_output("fig4_18.txt", table.render() + "\n\n" + table.render_chart())

    for name in STANDALONE_SHOP_ORDER:
        assert riscv_standalone_shop[name].cold.l2_misses <= \
            x86_standalone_shop[name].cold.l2_misses, name
    # L2 misses track the cycle ordering within each platform: Spearman-ish
    # sanity — the workload with the most cold L2 misses is also the
    # slowest cold on x86.
    worst_l2 = max(STANDALONE_SHOP_ORDER,
                   key=lambda name: x86_standalone_shop[name].cold.l2_misses)
    worst_cycles = max(STANDALONE_SHOP_ORDER,
                       key=lambda name: x86_standalone_shop[name].cold.cycles)
    assert worst_l2.split("-")[-1] == worst_cycles.split("-")[-1]
