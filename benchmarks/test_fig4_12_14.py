"""Figs 4.12-4.14: the x86 simulated system."""

import statistics

from conftest import HOTEL_ORDER, STANDALONE_SHOP_ORDER, run_once, write_output

from repro.core.results import MeasurementTable, cold_warm_table

PYTHON_FUNCTIONS = [
    "fibonacci-python", "aes-python", "auth-python",
    "recommendationservice-python", "emailservice-python",
]


def test_fig4_12_x86_standalone_shop_cycles(benchmark, x86_standalone_shop):
    """Fig 4.12: standalone + online shop cycles (x86)."""

    def build():
        return cold_warm_table(
            "Fig 4.12: cycles, standalone + online shop (x86)",
            x86_standalone_shop,
            metric=lambda stats: stats.cycles,
            order=STANDALONE_SHOP_ORDER,
            metric_name="cycles",
        )

    table = run_once(benchmark, build)
    write_output("fig4_12.txt", table.render() + "\n\n" + table.render_chart())

    # "the Python benchmarks perform poorly in cold executions ... near 10
    # times slower compared to warm executions."
    ratios = {}
    for name in PYTHON_FUNCTIONS:
        m = x86_standalone_shop[name]
        ratios[name] = m.cold.cycles / m.warm.cycles
        if name != "emailservice-python":
            assert ratios[name] > 8, (name, ratios[name])
    # "we see an exception to this phenomenon ... the emailservice benchmark"
    others = [ratio for name, ratio in ratios.items()
              if name != "emailservice-python"]
    assert ratios["emailservice-python"] < 0.6 * statistics.mean(others)


def test_fig4_13_x86_python_l2(benchmark, x86_standalone_shop):
    """Fig 4.13: L2 misses for the Python functions (x86).

    Emailservice's better cold performance "is thanks to its lower number
    of L2 cache misses".
    """

    def build():
        table = MeasurementTable("Fig 4.13: L2 misses, Python functions (x86)",
                                 ["cold_l2", "warm_l2"])
        for name in PYTHON_FUNCTIONS:
            m = x86_standalone_shop[name]
            table.add_row(name, m.cold.l2_misses, m.warm.l2_misses)
        return table

    table = run_once(benchmark, build)
    write_output("fig4_13.txt", table.render() + "\n\n" + table.render_chart())

    cold_l2 = {name: x86_standalone_shop[name].cold.l2_misses
               for name in PYTHON_FUNCTIONS}
    email = cold_l2.pop("emailservice-python")
    assert email < 0.5 * min(cold_l2.values())


def test_fig4_14_x86_hotel_cycles(benchmark, x86_hotel):
    """Fig 4.14: hotel application cycles (x86).

    "For the Hotel collection we see similar results to its RISC-V
    counterpart" — same orderings, without RISC-V profile's extreme.
    """

    def build():
        return cold_warm_table(
            "Fig 4.14: cycles, hotel application (x86)",
            x86_hotel,
            metric=lambda stats: stats.cycles,
            order=HOTEL_ORDER,
            metric_name="cycles",
        )

    table = run_once(benchmark, build)
    write_output("fig4_14.txt", table.render() + "\n\n" + table.render_chart())

    cold = {name: x86_hotel[name].cold.cycles for name in HOTEL_ORDER}
    warm = {name: x86_hotel[name].warm.cycles for name in HOTEL_ORDER}
    trio = ("hotel-reservation-go", "hotel-rate-go", "hotel-profile-go")
    plain = ("hotel-geo-go", "hotel-recommendation-go", "hotel-user-go")
    assert statistics.mean(cold[name] for name in trio) > \
        statistics.mean(cold[name] for name in plain)
    assert all(cold[name] > 4 * warm[name] for name in HOTEL_ORDER)
